// Package workload implements the paper's LUT-based per-tile CPU-time
// estimation (Sec. III-D1). The look-up table is keyed by a coarse tile
// descriptor — tile area class, texture class, motion class, QP bucket and
// search level — and stores a histogram of observed encode times which is
// updated online throughout the encoding process. Because the re-tiler
// produces a limited number of attainable tile structures and the encoder
// a limited number of configurations, the key space is small and the LUT
// converges quickly; the paper reports over/under-estimation below 100 µs
// once enough frames have been processed.
//
// Medical videos are classifiable into a small set of body-part categories
// (bones, lung and chest, brain, ...), and the LUT learned on one video
// transfers to other videos of the same class; Store keeps one LUT per
// class and hands out shared references.
package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Area classes bucket tile pixel counts so similar tiles share histograms.
// Boundaries chosen around the re-tiler's attainable tile sizes for
// 640×480: min tiles are 64×64 = 4096 px, center tiles typically 60–160 px
// squares, grown corner tiles larger.
var areaBounds = []int{6 * 1024, 12 * 1024, 24 * 1024, 48 * 1024}

// Key identifies one histogram in the LUT.
type Key struct {
	// AreaClass ∈ [0, len(areaBounds)] buckets the tile pixel count.
	AreaClass int
	// Texture ∈ {0,1,2} and Motion ∈ {0,1} mirror the analysis classes.
	Texture int
	Motion  int
	// QPBucket groups QP into the paper's five operating points
	// (22, 27, 32, 37, 42 → nearest).
	QPBucket int
	// SearchLevel encodes the search effort: the log2 of the window.
	SearchLevel int
}

// String formats the key compactly for traces.
func (k Key) String() string {
	return fmt.Sprintf("a%d/t%d/m%d/q%d/s%d", k.AreaClass, k.Texture, k.Motion, k.QPBucket, k.SearchLevel)
}

// AreaClass buckets a tile area in pixels.
func AreaClass(area int) int {
	for i, b := range areaBounds {
		if area <= b {
			return i
		}
	}
	return len(areaBounds)
}

// QPBucket maps a QP to the nearest paper operating point index
// (0→22, 1→27, 2→32, 3→37, 4→42).
func QPBucket(qp int) int {
	points := []int{22, 27, 32, 37, 42}
	best, bestD := 0, 1<<30
	for i, p := range points {
		d := qp - p
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// SearchLevel maps a search window to a small level index (8→3, 16→4,
// 32→5, 64→6); non-power-of-two windows round down.
func SearchLevel(window int) int {
	level := 0
	for w := window; w > 1; w >>= 1 {
		level++
	}
	return level
}

// MakeKey assembles a Key from raw tile properties.
func MakeKey(area int, texture, motion, qp, window int) Key {
	return Key{
		AreaClass:   AreaClass(area),
		Texture:     texture,
		Motion:      motion,
		QPBucket:    QPBucket(qp),
		SearchLevel: SearchLevel(window),
	}
}

// numBins covers durations up to 2^23 µs ≈ 8.4 s per tile, far beyond any
// realistic tile encode time.
const numBins = 24

// maxObservation caps a single observed duration. No real tile encode
// takes anywhere near a minute; the cap keeps the running sum (and the
// calibration EWMA) safely clear of int64 overflow under adversarial
// feedback (see FuzzCalibrate).
const maxObservation = time.Minute

// clampObservation forces a measured duration into [0, maxObservation].
func clampObservation(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if d > maxObservation {
		return maxObservation
	}
	return d
}

// histogram tracks observed durations with power-of-two µs bins plus exact
// aggregates for the mean, and an optional calibration EWMA fed by the
// serving loop (see LUT.Calibrate).
type histogram struct {
	count uint64
	sum   time.Duration
	// bins[i] counts observations in [2^i, 2^(i+1)) µs; bins[0] includes 0.
	bins [numBins]uint64
	// calCount/calEWMA hold the measurement-calibrated estimate: an
	// exponentially-weighted mean of the times the server actually
	// measured under this key. When present it takes precedence over the
	// lifetime mean, because it tracks the host's *current* speed (thermal
	// drift, co-located load) instead of averaging over all history.
	calCount uint64
	calEWMA  float64 // nanoseconds
}

func binFor(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < numBins-1 {
		us >>= 1
		b++
	}
	return b
}

func (h *histogram) add(d time.Duration) {
	d = clampObservation(d)
	h.count++
	h.sum += d
	h.bins[binFor(d)]++
}

// mean returns the average observed duration (0 when empty).
func (h *histogram) mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(int64(h.sum) / int64(h.count))
}

// value returns the histogram's best estimate: the calibration EWMA when
// the key has been calibrated, the lifetime mean otherwise.
func (h *histogram) value() time.Duration {
	if h.calCount > 0 {
		return time.Duration(h.calEWMA)
	}
	return h.mean()
}

// hasData reports whether the histogram can produce an estimate.
func (h *histogram) hasData() bool { return h.count > 0 || h.calCount > 0 }

// LUT is the per-class look-up table. It is safe for concurrent use: tiles
// of one frame are encoded in parallel and all report observations.
type LUT struct {
	mu sync.RWMutex
	m  map[Key]*histogram
	// fallbackMean supports estimation before a key has observations.
	fallbackSum   time.Duration
	fallbackCount uint64
	// estimation error accounting
	errSum   time.Duration
	errCount uint64
}

// NewLUT returns an empty table.
func NewLUT() *LUT { return &LUT{m: make(map[Key]*histogram)} }

// Observe records a measured tile encode time under key k. If a prior
// estimate existed for k, the estimation error statistic is updated first.
func (l *LUT) Observe(k Key, d time.Duration) {
	d = clampObservation(d)
	l.mu.Lock()
	defer l.mu.Unlock()
	if h, ok := l.m[k]; ok && h.hasData() {
		e := h.value() - d
		if e < 0 {
			e = -e
		}
		l.errSum += e
		l.errCount++
	}
	h := l.m[k]
	if h == nil {
		h = &histogram{}
		l.m[k] = h
	}
	h.add(d)
	l.fallbackSum += d
	l.fallbackCount++
}

// Calibrate feeds one *server-measured* tile encode time back into the
// table as an exponentially-weighted correction for key k:
//
//	ewma ← ewma + α·(measured − ewma)
//
// The first calibration of a key seeds the EWMA with the measurement.
// Calibrated keys estimate from the EWMA instead of the lifetime mean, so
// stage-D1 estimates converge toward the host's current timings instead of
// dragging all of history (or a seeded prior) behind them. Alpha is
// clamped to (0, 1]; non-positive values default to 0.5. Unlike Observe,
// Calibrate does not touch the histogram, the global fallback mean, or the
// error statistic — the serving loop calls both, on different channels.
// The update is order-sensitive, so the server applies it from a single
// goroutine in deterministic session order after each round.
func (l *LUT) Calibrate(k Key, measured time.Duration, alpha float64) {
	measured = clampObservation(measured)
	if !(alpha > 0) || alpha > 1 { // NaN-safe: !(NaN > 0) is true
		alpha = 0.5
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	h := l.m[k]
	if h == nil {
		h = &histogram{}
		l.m[k] = h
	}
	if h.calCount == 0 {
		h.calEWMA = float64(measured)
	} else {
		h.calEWMA += alpha * (float64(measured) - h.calEWMA)
	}
	if h.calEWMA < 0 {
		h.calEWMA = 0
	}
	if h.calEWMA > float64(maxObservation) {
		h.calEWMA = float64(maxObservation)
	}
	h.calCount++
}

// Calibrations returns the total number of calibration updates applied.
func (l *LUT) Calibrations() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var n uint64
	for _, h := range l.m {
		n += h.calCount
	}
	return n
}

// Estimate predicts the encode time for key k: the calibration EWMA when
// the serving loop has calibrated the key (see Calibrate), the key's
// lifetime mean otherwise. Unknown keys fall back to the nearest known key
// (same texture/motion, closest area and QP), then to the global mean,
// then to a conservative fixed prior.
func (l *LUT) Estimate(k Key) time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.estimateLocked(k)
}

// EstimateInto resolves every key of m to its estimate under a single
// read lock — the batched form of Estimate for stage D1, where the
// sessions of one workload class collectively look up far fewer distinct
// keys than they have tiles. Each value is exactly what Estimate(key)
// would return at the same instant; only the locking is amortized.
func (l *LUT) EstimateInto(m map[Key]time.Duration) {
	if len(m) == 0 {
		return
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for k := range m {
		m[k] = l.estimateLocked(k)
	}
}

// estimateLocked is Estimate's body; the caller holds at least mu.RLock.
func (l *LUT) estimateLocked(k Key) time.Duration {
	if h, ok := l.m[k]; ok && h.hasData() {
		return h.value()
	}
	// Nearest-key fallback: scan for the minimum key distance with data.
	// Ties break toward the smaller key so the estimate does not depend on
	// map iteration order — serving decisions must be reproducible.
	var best *histogram
	var bestK Key
	bestD := 1 << 30
	for kk, h := range l.m {
		if !h.hasData() {
			continue
		}
		d := keyDistance(k, kk)
		if d < bestD || (d == bestD && less(kk, bestK)) {
			best, bestK, bestD = h, kk, d
		}
	}
	if best != nil {
		return best.value()
	}
	if l.fallbackCount > 0 {
		return time.Duration(int64(l.fallbackSum) / int64(l.fallbackCount))
	}
	// Conservative prior: a dense 640×480 tile at fmax. Overestimation is
	// safe (the allocator reserves too much and releases slack via DVFS).
	return 5 * time.Millisecond
}

// keyDistance is a weighted L1 distance over key fields; texture/motion
// mismatches cost most because they change the encode path the most.
func keyDistance(a, b Key) int {
	d := 0
	d += 4 * abs(a.Texture-b.Texture)
	d += 4 * abs(a.Motion-b.Motion)
	d += 2 * abs(a.AreaClass-b.AreaClass)
	d += abs(a.QPBucket - b.QPBucket)
	d += abs(a.SearchLevel - b.SearchLevel)
	return d
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MeanAbsError returns the running mean absolute estimation error and the
// number of re-observations it is based on. The paper reports < 100 µs
// once the table is warm.
func (l *LUT) MeanAbsError() (time.Duration, uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.errCount == 0 {
		return 0, 0
	}
	return time.Duration(int64(l.errSum) / int64(l.errCount)), l.errCount
}

// Keys returns the known keys in deterministic order (for traces/tests).
func (l *LUT) Keys() []Key {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Key, 0, len(l.m))
	for k := range l.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func less(a, b Key) bool {
	if a.AreaClass != b.AreaClass {
		return a.AreaClass < b.AreaClass
	}
	if a.Texture != b.Texture {
		return a.Texture < b.Texture
	}
	if a.Motion != b.Motion {
		return a.Motion < b.Motion
	}
	if a.QPBucket != b.QPBucket {
		return a.QPBucket < b.QPBucket
	}
	return a.SearchLevel < b.SearchLevel
}

// Observations returns the total number of recorded samples.
func (l *LUT) Observations() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.fallbackCount
}

// Histogram returns a copy of the per-bin counts for a key (for traces).
func (l *LUT) Histogram(k Key) ([]uint64, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h, ok := l.m[k]
	if !ok {
		return nil, false
	}
	out := make([]uint64, len(h.bins))
	copy(out, h.bins[:])
	return out, true
}

// Store keeps one LUT per body-part class so concurrent transcoding
// sessions of the same class share and jointly refine one table.
type Store struct {
	mu   sync.Mutex
	luts map[string]*LUT
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{luts: make(map[string]*LUT)} }

// ForClass returns the LUT shared by all videos of the named class,
// creating it on first use.
func (s *Store) ForClass(class string) *LUT {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.luts[class]
	if !ok {
		l = NewLUT()
		s.luts[class] = l
	}
	return l
}

// Classes returns the known class names in sorted order.
func (s *Store) Classes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.luts))
	for c := range s.luts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
