package workload

import (
	"testing"
	"time"
)

// FuzzCalibrate drives the online LUT update path with arbitrary measured
// -time feedback and checks the estimator's safety invariants:
//
//   - estimates are never negative and never exceed the observation cap
//     (so no int64 overflow or sign flip can leak into stage D2, where a
//     negative thread time is an allocator validation error);
//   - monotone feedback stays monotone in area: when every measurement of
//     a larger-area key is ≥ every measurement of a smaller-area key (the
//     physical reality — more pixels cost more), the estimates preserve
//     that order, because each key's EWMA and mean are convex combinations
//     of its own observations.
func FuzzCalibrate(f *testing.F) {
	f.Add(int64(1500000), int64(2500000), uint16(500), uint8(1), uint8(1), uint8(32), uint8(16), uint8(3))
	f.Add(int64(-5), int64(1<<62), uint16(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(1))
	f.Add(int64(1<<62), int64(1<<62), uint16(1000), uint8(2), uint8(1), uint8(51), uint8(64), uint8(8))
	f.Add(int64(0), int64(0), uint16(999), uint8(5), uint8(3), uint8(200), uint8(255), uint8(0))

	f.Fuzz(func(t *testing.T, dA, dB int64, alphaMil uint16, tex, mot, qp, window uint8, rounds uint8) {
		l := NewLUT()
		alpha := float64(alphaMil) / 1000
		// Two keys identical except for the area class.
		small := Key{AreaClass: 0, Texture: int(tex % 3), Motion: int(mot % 2),
			QPBucket: QPBucket(int(qp)), SearchLevel: SearchLevel(int(window) + 1)}
		large := small
		large.AreaClass = 2

		lo, hi := time.Duration(dA), time.Duration(dB)
		if lo > hi {
			lo, hi = hi, lo
		}
		n := int(rounds%16) + 1
		for i := 0; i < n; i++ {
			l.Observe(small, lo)
			l.Observe(large, hi)
			l.Calibrate(small, lo, alpha)
			l.Calibrate(large, hi, alpha)
		}

		for _, k := range []Key{small, large} {
			est := l.Estimate(k)
			if est < 0 {
				t.Fatalf("negative estimate %v for %v after feedback (%v, %v, α=%v)", est, k, dA, dB, alpha)
			}
			if est > maxObservation {
				t.Fatalf("estimate %v for %v exceeds the observation cap", est, k)
			}
		}
		if es, el := l.Estimate(small), l.Estimate(large); el < es {
			t.Fatalf("monotone feedback inverted by estimation: small-area %v > large-area %v", es, el)
		}
		// The probe key between the two area classes must also estimate
		// inside the safe range via the nearest-key fallback.
		probe := small
		probe.AreaClass = 1
		if est := l.Estimate(probe); est < 0 || est > maxObservation {
			t.Fatalf("fallback estimate %v out of range", est)
		}
	})
}
