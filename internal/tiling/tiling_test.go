package tiling

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{X: 10, Y: 20, W: 30, H: 40}
	if r.Area() != 1200 {
		t.Fatalf("area = %d", r.Area())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if (Rect{W: 0, H: 5}).Empty() == false {
		t.Fatal("zero-width rect not empty")
	}
	if !r.Contains(10, 20) || !r.Contains(39, 59) {
		t.Fatal("corners not contained")
	}
	if r.Contains(40, 20) || r.Contains(10, 60) {
		t.Fatal("exclusive bounds violated")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{10, 0, 5, 5}, false}, // touching edge: no shared sample
		{Rect{9, 9, 5, 5}, true},
		{Rect{-5, -5, 6, 6}, true},
		{Rect{0, 10, 10, 1}, false},
		{Rect{3, 3, 2, 2}, true}, // contained
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("intersection not symmetric for %v", c.b)
		}
	}
}

func TestUniformExactPartition(t *testing.T) {
	// The paper's Table I sweep set.
	splits := [][2]int{{1, 1}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {5, 2}, {4, 3}, {5, 3}, {5, 4}, {4, 6}, {5, 6}}
	for _, s := range splits {
		g, err := Uniform(640, 480, s[0], s[1])
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if g.NumTiles() != s[0]*s[1] {
			t.Fatalf("%v: %d tiles", s, g.NumTiles())
		}
	}
}

func TestUniformHandlesRemainders(t *testing.T) {
	g, err := Uniform(10, 7, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Widths must be 4,3,3 and heights 4,3 in some arrangement; all tiles
	// within one sample of each other per dimension.
	for _, tl := range g.Tiles {
		if tl.W < 3 || tl.W > 4 || tl.H < 3 || tl.H > 4 {
			t.Fatalf("tile %v outside expected size range", tl.Rect)
		}
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(0, 480, 1, 1); err == nil {
		t.Fatal("accepted zero width")
	}
	if _, err := Uniform(640, 480, 0, 1); err == nil {
		t.Fatal("accepted zero split")
	}
	if _, err := Uniform(4, 4, 5, 1); err == nil {
		t.Fatal("accepted more columns than samples")
	}
}

func TestUniformPropertyPartition(t *testing.T) {
	f := func(w16, h16, nx4, ny4 uint8) bool {
		w, h := int(w16)%512+16, int(h16)%512+16
		nx, ny := int(nx4)%6+1, int(ny4)%6+1
		g, err := Uniform(w, h, nx, ny)
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.NumTiles() == nx*ny
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := &Grid{FrameW: 10, FrameH: 10, Tiles: []Tile{
		{Rect: Rect{0, 0, 6, 10}},
		{Rect: Rect{5, 0, 5, 10}},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("overlapping grid validated")
	}
}

func TestValidateCatchesGap(t *testing.T) {
	g := &Grid{FrameW: 10, FrameH: 10, Tiles: []Tile{
		{Rect: Rect{0, 0, 5, 10}},
		{Rect: Rect{5, 0, 4, 10}},
	}}
	if err := g.Validate(); err == nil {
		t.Fatal("gapped grid validated")
	}
}

func TestValidateCatchesOutOfBounds(t *testing.T) {
	g := &Grid{FrameW: 10, FrameH: 10, Tiles: []Tile{{Rect: Rect{0, 0, 11, 10}}}}
	if err := g.Validate(); err == nil {
		t.Fatal("out-of-bounds grid validated")
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	a := MustUniform(100, 100, 2, 2)
	b := &Grid{FrameW: 100, FrameH: 100}
	for i := len(a.Tiles) - 1; i >= 0; i-- {
		b.Tiles = append(b.Tiles, a.Tiles[i])
	}
	if !Equal(a, b) {
		t.Fatal("reordered identical grids not Equal")
	}
	c := MustUniform(100, 100, 4, 1)
	if Equal(a, c) {
		t.Fatal("different grids reported Equal")
	}
}

// stubProbe drives the re-tiler with a content rectangle: anything fully
// outside content is low, anything overlapping it is not.
type stubProbe struct {
	content Rect
	texture int
}

func (s stubProbe) LowContent(r Rect) bool { return !r.Intersects(s.content) }
func (s stubProbe) CenterTexture(Rect) int { return s.texture }

func TestRetileProducesValidPartition(t *testing.T) {
	cfg := DefaultRetileConfig()
	probe := stubProbe{content: Rect{200, 150, 240, 180}, texture: 2}
	g, err := Retile(640, 480, cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTiles() > cfg.MaxTiles {
		t.Fatalf("%d tiles exceeds max %d", g.NumTiles(), cfg.MaxTiles)
	}
}

func TestRetileCenterTileCount(t *testing.T) {
	cfg := DefaultRetileConfig()
	probe := stubProbe{content: Rect{200, 150, 240, 180}, texture: 2}
	g, err := Retile(640, 480, cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	var center int
	for _, tl := range g.Tiles {
		if tl.Region == RegionCenter {
			center++
		}
	}
	if center < cfg.MinCenterTiles {
		t.Fatalf("%d center tiles, want ≥ %d", center, cfg.MinCenterTiles)
	}
}

func TestRetileLowTextureFewerCenterTiles(t *testing.T) {
	cfg := DefaultRetileConfig()
	probe := stubProbe{content: Rect{200, 150, 240, 180}}
	counts := make(map[int]int)
	for tex := 0; tex <= 2; tex++ {
		probe.texture = tex
		g, err := Retile(640, 480, cfg, probe)
		if err != nil {
			t.Fatal(err)
		}
		for _, tl := range g.Tiles {
			if tl.Region == RegionCenter {
				counts[tex]++
			}
		}
	}
	if counts[0] > counts[2] {
		t.Fatalf("low texture produced more center tiles (%d) than high (%d)", counts[0], counts[2])
	}
}

func TestRetileGrowsAwayFromContent(t *testing.T) {
	cfg := DefaultRetileConfig()
	// Content confined to the right half: left margin should grow wider
	// than the right margin.
	probe := stubProbe{content: Rect{400, 100, 200, 280}, texture: 1}
	g, err := Retile(640, 480, cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	var leftW, rightW int
	for _, tl := range g.Tiles {
		if tl.Region != RegionCorner {
			continue
		}
		if tl.X == 0 && tl.Y == 0 {
			leftW = tl.W
		}
		if tl.X+tl.W == 640 && tl.Y == 0 {
			rightW = tl.W
		}
	}
	if leftW <= rightW {
		t.Fatalf("left corner width %d not larger than right %d despite right-side content", leftW, rightW)
	}
}

func TestRetileAllLowContentStillValid(t *testing.T) {
	cfg := DefaultRetileConfig()
	// Content nowhere: margins grow to their caps; partition must hold.
	probe := stubProbe{content: Rect{-10, -10, 1, 1}, texture: 0}
	g, err := Retile(640, 480, cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRetileAllHighContentStillValid(t *testing.T) {
	cfg := DefaultRetileConfig()
	probe := stubProbe{content: Rect{0, 0, 640, 480}, texture: 2}
	g, err := Retile(640, 480, cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Margins should be at the minimum: corner tiles at min size.
	for _, tl := range g.Tiles {
		if tl.Region == RegionCorner && (tl.W > cfg.MinTileW || tl.H > cfg.MinTileH) {
			t.Fatalf("corner tile %v grew despite high content everywhere", tl.Rect)
		}
	}
}

func TestRetileRespectsMinTileSize(t *testing.T) {
	cfg := DefaultRetileConfig()
	probe := stubProbe{content: Rect{250, 180, 140, 120}, texture: 2}
	g, err := Retile(640, 480, cfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range g.Tiles {
		if tl.Region == RegionCenter && (tl.W < cfg.MinTileW || tl.H < cfg.MinTileH) {
			t.Fatalf("center tile %v below minimum %dx%d", tl.Rect, cfg.MinTileW, cfg.MinTileH)
		}
	}
}

func TestRetileConfigValidation(t *testing.T) {
	cfg := DefaultRetileConfig()
	cfg.MinTileW = 0
	if _, err := Retile(640, 480, cfg, stubProbe{}); err == nil {
		t.Fatal("accepted zero min tile width")
	}
	cfg = DefaultRetileConfig()
	cfg.MinTileW = 300 // 3×300 > 640
	if _, err := Retile(640, 480, cfg, stubProbe{}); err == nil {
		t.Fatal("accepted oversized min tile")
	}
	cfg = DefaultRetileConfig()
	cfg.MaxTiles = 5
	if _, err := Retile(640, 480, cfg, stubProbe{}); err == nil {
		t.Fatal("accepted MaxTiles too small for structure")
	}
	cfg = DefaultRetileConfig()
	if _, err := Retile(640, 480, cfg, nil); err == nil {
		t.Fatal("accepted nil probe")
	}
}

func TestRetilePropertyAlwaysPartition(t *testing.T) {
	f := func(cx, cy, cw, ch uint16, tex uint8) bool {
		probe := stubProbe{
			content: Rect{int(cx % 600), int(cy % 440), int(cw%200) + 1, int(ch%200) + 1},
			texture: int(tex % 3),
		}
		g, err := Retile(640, 480, DefaultRetileConfig(), probe)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionAndStringMethods(t *testing.T) {
	if RegionCenter.String() != "center" || RegionCorner.String() != "corner" || RegionBorder.String() != "border" {
		t.Fatal("region names wrong")
	}
	if Region(99).String() == "" {
		t.Fatal("unknown region has empty name")
	}
	if (Rect{1, 2, 3, 4}).String() != "3x4@(1,2)" {
		t.Fatalf("rect string = %s", Rect{1, 2, 3, 4}.String())
	}
}
