// Package tiling provides frame partitioning for tile-parallel encoding:
// rectangle/tile/grid types, uniform n×m tilings, exact partition
// validation, and the paper's content-aware re-tiling procedure
// (Sec. III-B) which grows low-content corner and border tiles and splits
// the information-dense center into several similar-size tiles.
package tiling

import (
	"fmt"
	"sort"
)

// Rect is an axis-aligned rectangle in sample coordinates.
type Rect struct {
	X, Y, W, H int
}

// Area returns W*H.
func (r Rect) Area() int { return r.W * r.H }

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Contains reports whether (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Intersects reports whether two rectangles share any sample.
func (r Rect) Intersects(o Rect) bool {
	return r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H
}

// String formats the rectangle as WxH@(X,Y).
func (r Rect) String() string { return fmt.Sprintf("%dx%d@(%d,%d)", r.W, r.H, r.X, r.Y) }

// Region labels where a tile sits in the frame, which the scheduler and the
// analysis stage use to reason about expected content.
type Region int

// Tile regions produced by the content-aware re-tiler.
const (
	RegionCenter Region = iota
	RegionCorner
	RegionBorder
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case RegionCenter:
		return "center"
	case RegionCorner:
		return "corner"
	case RegionBorder:
		return "border"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Tile is one independently encodable partition of a frame.
type Tile struct {
	Rect
	// Index is the tile's position in its Grid (0-based, raster-ish order).
	Index int
	// Region records where the re-tiler placed this tile.
	Region Region
}

// Grid is a complete partition of a FrameW×FrameH frame into tiles.
type Grid struct {
	FrameW, FrameH int
	Tiles          []Tile
}

// NumTiles returns the number of tiles.
func (g *Grid) NumTiles() int { return len(g.Tiles) }

// Validate checks that the tiles exactly partition the frame: every sample
// is covered exactly once and no tile exceeds the frame bounds.
func (g *Grid) Validate() error {
	if g.FrameW <= 0 || g.FrameH <= 0 {
		return fmt.Errorf("tiling: invalid frame %dx%d", g.FrameW, g.FrameH)
	}
	if len(g.Tiles) == 0 {
		return fmt.Errorf("tiling: empty grid")
	}
	var area int
	for i, t := range g.Tiles {
		if t.Empty() {
			return fmt.Errorf("tiling: tile %d is empty: %s", i, t.Rect)
		}
		if t.X < 0 || t.Y < 0 || t.X+t.W > g.FrameW || t.Y+t.H > g.FrameH {
			return fmt.Errorf("tiling: tile %d out of bounds: %s in %dx%d", i, t.Rect, g.FrameW, g.FrameH)
		}
		area += t.Area()
		for j := i + 1; j < len(g.Tiles); j++ {
			if t.Intersects(g.Tiles[j].Rect) {
				return fmt.Errorf("tiling: tiles %d and %d overlap: %s vs %s", i, j, t.Rect, g.Tiles[j].Rect)
			}
		}
	}
	if area != g.FrameW*g.FrameH {
		return fmt.Errorf("tiling: tiles cover %d samples, frame has %d", area, g.FrameW*g.FrameH)
	}
	return nil
}

// reindex renumbers tiles in (y, x) raster order for deterministic output.
func (g *Grid) reindex() {
	sort.SliceStable(g.Tiles, func(i, j int) bool {
		a, b := g.Tiles[i], g.Tiles[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	for i := range g.Tiles {
		g.Tiles[i].Index = i
	}
}

// Uniform returns the n×m uniform tiling the paper uses as both the initial
// tiling and the Table I sweep axis: the frame width is divided into nx
// columns and the height into ny rows, with remainders spread one sample at
// a time over the leading columns/rows (so all tiles differ by at most one
// sample per dimension).
func Uniform(frameW, frameH, nx, ny int) (*Grid, error) {
	if frameW <= 0 || frameH <= 0 {
		return nil, fmt.Errorf("tiling: invalid frame %dx%d", frameW, frameH)
	}
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("tiling: invalid split %dx%d", nx, ny)
	}
	if nx > frameW || ny > frameH {
		return nil, fmt.Errorf("tiling: split %dx%d exceeds frame %dx%d", nx, ny, frameW, frameH)
	}
	xs := splitEven(frameW, nx)
	ys := splitEven(frameH, ny)
	g := &Grid{FrameW: frameW, FrameH: frameH}
	oy := 0
	for _, th := range ys {
		ox := 0
		for _, tw := range xs {
			g.Tiles = append(g.Tiles, Tile{Rect: Rect{X: ox, Y: oy, W: tw, H: th}, Region: RegionCenter})
			ox += tw
		}
		oy += th
	}
	g.reindex()
	return g, nil
}

// splitEven divides total into n nearly equal positive parts.
func splitEven(total, n int) []int {
	parts := make([]int, n)
	base, rem := total/n, total%n
	for i := range parts {
		parts[i] = base
		if i < rem {
			parts[i]++
		}
	}
	return parts
}

// MustUniform is Uniform for parameters known to be valid.
func MustUniform(frameW, frameH, nx, ny int) *Grid {
	g, err := Uniform(frameW, frameH, nx, ny)
	if err != nil {
		panic(err)
	}
	return g
}

// Equal reports whether two grids describe the same partition (same frame
// geometry and same rectangles, irrespective of index order).
func Equal(a, b *Grid) bool {
	if a.FrameW != b.FrameW || a.FrameH != b.FrameH || len(a.Tiles) != len(b.Tiles) {
		return false
	}
	key := func(t Tile) [4]int { return [4]int{t.X, t.Y, t.W, t.H} }
	seen := make(map[[4]int]int, len(a.Tiles))
	for _, t := range a.Tiles {
		seen[key(t)]++
	}
	for _, t := range b.Tiles {
		if seen[key(t)] == 0 {
			return false
		}
		seen[key(t)]--
	}
	return true
}
