package tiling

import (
	"fmt"
)

// ContentProbe answers content questions about rectangles of the current
// frame. It is implemented by the analysis package; tiling depends only on
// this narrow interface so the geometric algorithm stays testable with
// synthetic probes.
type ContentProbe interface {
	// LowContent reports whether both the texture and the motion inside r
	// are classified low (paper Sec. III-B: corner/border growth condition).
	LowContent(r Rect) bool
	// CenterTexture returns 0 (low), 1 (medium) or 2 (high) for the
	// texture of the central region, which sizes the center split.
	CenterTexture(r Rect) int
}

// RetileConfig parametrizes the content-aware re-tiler. The zero value is
// not valid; use DefaultRetileConfig.
type RetileConfig struct {
	// MinTileW, MinTileH are the minimum tile dimensions (the paper's
	// "predefined minimum tile size", which also guarantees termination).
	MinTileW, MinTileH int
	// MaxTiles caps the number of tiles within a frame.
	MaxTiles int
	// GrowthFactor is the per-step margin growth (paper: 25% more pixels,
	// first in width then in height).
	GrowthFactor float64
	// MaxMarginFrac bounds each border margin as a fraction of the frame
	// dimension so the center region always exists (≤ 0.45).
	MaxMarginFrac float64
	// MinCenterTiles is the minimum tile count for the high-texture,
	// high-motion center area (paper: 4).
	MinCenterTiles int
}

// DefaultRetileConfig returns the paper-faithful parameters.
func DefaultRetileConfig() RetileConfig {
	return RetileConfig{
		MinTileW:       64,
		MinTileH:       64,
		MaxTiles:       16,
		GrowthFactor:   0.25,
		MaxMarginFrac:  0.40,
		MinCenterTiles: 4,
	}
}

// Validate reports configuration errors against a frame geometry.
func (c RetileConfig) Validate(frameW, frameH int) error {
	if c.MinTileW <= 0 || c.MinTileH <= 0 {
		return fmt.Errorf("tiling: invalid min tile %dx%d", c.MinTileW, c.MinTileH)
	}
	if c.MinTileW*3 > frameW || c.MinTileH*3 > frameH {
		return fmt.Errorf("tiling: min tile %dx%d too large for frame %dx%d (need 3 per dimension)",
			c.MinTileW, c.MinTileH, frameW, frameH)
	}
	if c.MaxTiles < c.MinCenterTiles+8 {
		return fmt.Errorf("tiling: MaxTiles %d cannot hold %d center + 8 corner/border tiles",
			c.MaxTiles, c.MinCenterTiles)
	}
	if c.GrowthFactor <= 0 {
		return fmt.Errorf("tiling: non-positive growth factor %v", c.GrowthFactor)
	}
	if c.MaxMarginFrac <= 0 || c.MaxMarginFrac > 0.45 {
		return fmt.Errorf("tiling: MaxMarginFrac %v outside (0, 0.45]", c.MaxMarginFrac)
	}
	if c.MinCenterTiles < 1 {
		return fmt.Errorf("tiling: MinCenterTiles %d < 1", c.MinCenterTiles)
	}
	return nil
}

// Retile computes a content-aware partition of a frameW×frameH frame
// following Sec. III-B of the paper:
//
//  1. Starting from the corners and borders — which in bio-medical video
//     carry the least motion and texture — margins are grown by 25% more
//     pixels, first in the width and then in the height, for as long as the
//     margin strip remains low-texture and low-motion. The last low
//     coordinates are kept.
//  2. The four corner tiles, four border tiles and a central region result.
//  3. The center, which concentrates the diagnostic content, is split into
//     at least MinCenterTiles similar-size tiles; its texture class selects
//     the split density (low→minimum, high→denser), bounded by MaxTiles.
//
// The returned grid always validates (exact partition).
func Retile(frameW, frameH int, cfg RetileConfig, probe ContentProbe) (*Grid, error) {
	if err := cfg.Validate(frameW, frameH); err != nil {
		return nil, err
	}
	if probe == nil {
		return nil, fmt.Errorf("tiling: nil content probe")
	}

	maxMX := int(float64(frameW) * cfg.MaxMarginFrac)
	maxMY := int(float64(frameH) * cfg.MaxMarginFrac)
	if maxMX < cfg.MinTileW {
		maxMX = cfg.MinTileW
	}
	if maxMY < cfg.MinTileH {
		maxMY = cfg.MinTileH
	}

	// Grow the four margins independently. Each margin is the thickness of
	// the low-content strip along that frame edge.
	left := growMargin(cfg, probe, maxMX, func(m int) Rect { return Rect{0, 0, m, frameH} })
	right := growMargin(cfg, probe, maxMX, func(m int) Rect { return Rect{frameW - m, 0, m, frameH} })
	top := growMargin(cfg, probe, maxMY, func(m int) Rect { return Rect{0, 0, frameW, m} })
	bottom := growMargin(cfg, probe, maxMY, func(m int) Rect { return Rect{0, frameH - m, frameW, m} })

	// The center must retain room for its split at the minimum tile size.
	shrinkToFit(&left, &right, frameW, cfg.MinTileW)
	shrinkToFit(&top, &bottom, frameH, cfg.MinTileH)

	cx, cy := left, top
	cw, ch := frameW-left-right, frameH-top-bottom
	center := Rect{cx, cy, cw, ch}

	g := &Grid{FrameW: frameW, FrameH: frameH}
	add := func(r Rect, reg Region) {
		if !r.Empty() {
			g.Tiles = append(g.Tiles, Tile{Rect: r, Region: reg})
		}
	}
	// Corners.
	add(Rect{0, 0, left, top}, RegionCorner)
	add(Rect{cx + cw, 0, right, top}, RegionCorner)
	add(Rect{0, cy + ch, left, bottom}, RegionCorner)
	add(Rect{cx + cw, cy + ch, right, bottom}, RegionCorner)
	// Borders.
	add(Rect{cx, 0, cw, top}, RegionBorder)
	add(Rect{cx, cy + ch, cw, bottom}, RegionBorder)
	add(Rect{0, cy, left, ch}, RegionBorder)
	add(Rect{cx + cw, cy, right, ch}, RegionBorder)

	// Center split: texture selects the density.
	nx, ny := centerSplit(cfg, probe.CenterTexture(center), cw, ch, cfg.MaxTiles-len(g.Tiles))
	xs := splitEven(cw, nx)
	ys := splitEven(ch, ny)
	oy := cy
	for _, th := range ys {
		ox := cx
		for _, tw := range xs {
			add(Rect{ox, oy, tw, th}, RegionCenter)
			ox += tw
		}
		oy += th
	}

	g.reindex()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("tiling: retile produced invalid grid: %w", err)
	}
	return g, nil
}

// growMargin grows one edge margin by cfg.GrowthFactor per step while the
// strip remains low content, and returns the last low thickness. If even
// the minimum-thickness strip has content, the minimum is returned (tiles
// cannot shrink below the minimum tile size).
func growMargin(cfg RetileConfig, probe ContentProbe, maxM int, strip func(m int) Rect) int {
	m := minMarginFor(strip(0), cfg)
	if !probe.LowContent(strip(m)) {
		return m
	}
	for {
		next := m + int(float64(m)*cfg.GrowthFactor)
		if next == m {
			next = m + 1
		}
		if next > maxM {
			return m
		}
		if !probe.LowContent(strip(next)) {
			return m
		}
		m = next
	}
}

// minMarginFor returns the minimum margin thickness for a strip: vertical
// strips (full frame height) use MinTileW, horizontal ones MinTileH.
func minMarginFor(r Rect, cfg RetileConfig) int {
	if r.H >= r.W { // the strip callback was given thickness 0; H set means vertical
		return cfg.MinTileW
	}
	return cfg.MinTileH
}

// shrinkToFit reduces a pair of opposing margins until the space between
// them can hold at least two minimum-size tiles in that dimension.
func shrinkToFit(a, b *int, total, minTile int) {
	need := 2 * minTile
	for total-*a-*b < need {
		if *a >= *b && *a > minTile {
			*a--
		} else if *b > minTile {
			*b--
		} else if *a > minTile {
			*a--
		} else {
			// Both margins are already at the minimum; configuration
			// validation guarantees this cannot happen.
			return
		}
	}
}

// centerSplit chooses an nx×ny split of the cw×ch center region. The split
// is at least MinCenterTiles total tiles, denser when the texture class is
// higher, and never produces tiles below the minimum size or exceeds the
// remaining tile budget.
func centerSplit(cfg RetileConfig, texture int, cw, ch, budget int) (nx, ny int) {
	target := cfg.MinCenterTiles
	switch {
	case texture >= 2:
		target = cfg.MinCenterTiles * 2
	case texture == 1:
		target = cfg.MinCenterTiles + cfg.MinCenterTiles/2
	}
	if target > budget {
		target = budget
	}
	if target < 1 {
		target = 1
	}
	maxNX := cw / cfg.MinTileW
	maxNY := ch / cfg.MinTileH
	if maxNX < 1 {
		maxNX = 1
	}
	if maxNY < 1 {
		maxNY = 1
	}
	// Pick the factorization of the largest count ≤ target that fits and is
	// closest to the region's aspect ratio.
	bestNX, bestNY, bestCount := 1, 1, 1
	for ty := 1; ty <= maxNY; ty++ {
		for tx := 1; tx <= maxNX; tx++ {
			n := tx * ty
			if n > target {
				continue
			}
			if n > bestCount || (n == bestCount && aspectCloser(cw, ch, tx, ty, bestNX, bestNY)) {
				bestNX, bestNY, bestCount = tx, ty, n
			}
		}
	}
	return bestNX, bestNY
}

// aspectCloser reports whether split (ax, ay) yields tiles closer to square
// than (bx, by) for a cw×ch region.
func aspectCloser(cw, ch, ax, ay, bx, by int) bool {
	ra := ratio(float64(cw)/float64(ax), float64(ch)/float64(ay))
	rb := ratio(float64(cw)/float64(bx), float64(ch)/float64(by))
	return ra < rb
}

// ratio returns max(w,h)/min(w,h) ≥ 1.
func ratio(w, h float64) float64 {
	if w > h {
		return w / h
	}
	return h / w
}
