package main

// The distributed front door: -master runs the routing/supervision node,
// -agent runs one fleet node that registers with it, and -submit drives
// sessions into a master (or directly into an agent) over the versioned
// HTTP/JSON protocol in internal/dist. All policy lives in internal/dist;
// this file only maps flags onto configs.
//
// A minimal localhost fleet:
//
//	transcode -master 127.0.0.1:7600 -events /tmp/master.jsonl &
//	transcode -agent 127.0.0.1:7601 -name a -master-url http://127.0.0.1:7600 &
//	transcode -agent 127.0.0.1:7602 -name b -master-url http://127.0.0.1:7600 &
//	transcode -submit http://127.0.0.1:7600 -users 8 -frames 32

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/medgen"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/tenancy"
)

type distOpts struct {
	masterAddr string
	agentAddr  string
	submitURL  string

	name            string
	masterURL       string
	advertiseURL    string
	heartbeatEvery  time.Duration
	heartbeatGrace  time.Duration
	checkpointEvery int
	eventsPath      string

	// Shared with the local fleet modes.
	users, shards, width, height, frames int
	seed                                 int64
	allocator, sink                      string
	metricsAddr                          string

	tenant        string
	priority      int
	tenantsConfig string
}

// runMaster serves the routing/supervision node until the context is
// cancelled. Its operational journal (agent joins/deaths, re-imports,
// lost sessions) goes to -events as JSONL — the artifact the dist-smoke
// CI job asserts failover against.
func runMaster(ctx context.Context, o distOpts) error {
	var events *json.Encoder
	if o.eventsPath != "" {
		f, err := os.Create(o.eventsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		events = json.NewEncoder(f)
	}
	// The master enforces the fleet-wide per-tenant admission rate at the
	// routing front door (agents run rate-stripped registries, so a routed
	// submission is charged exactly once).
	var reg *tenancy.Registry
	if o.tenantsConfig != "" {
		var err error
		if reg, err = tenancy.LoadFile(o.tenantsConfig); err != nil {
			return err
		}
	}
	m, err := dist.NewMaster(dist.MasterConfig{
		Addr:             o.masterAddr,
		Tenancy:          reg,
		HeartbeatTimeout: o.heartbeatGrace,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
		OnEvent: func(e dist.Event) {
			if events != nil {
				_ = events.Encode(e) // serialized by the master's event lock
			}
		},
	})
	if err != nil {
		return err
	}
	if err := m.Start(ctx); err != nil {
		return err
	}
	defer m.Close()
	<-ctx.Done()
	return nil
}

// runAgent serves one fleet node until the context is cancelled. The
// fleet options mirror the local -users mode where they make sense for
// a long-running node; the telemetry sink and the per-agent-labeled
// metrics endpoint come from the same flags.
func runAgent(ctx context.Context, o distOpts) error {
	sink, _, closeSink, err := buildSink(o.sink)
	if err != nil {
		return err
	}
	fleetOptions := []serve.Option{
		serve.WithShards(o.shards),
		serve.WithAllocator(o.allocator),
		serve.WithCalibration(core.CalibrationConfig{Enabled: true}),
		serve.WithAdmission(core.AdmissionConfig{Enabled: true, RecoverAfterRounds: 3}),
	}
	if o.tenantsConfig != "" {
		reg, err := tenancy.LoadFile(o.tenantsConfig)
		if err != nil {
			return err
		}
		// Weights and priority classes only: the master already charged
		// the fleet-wide token bucket before routing here.
		fleetOptions = append(fleetOptions, serve.WithTenancy(reg.WithoutRates()))
	}
	if o.metricsAddr != "" {
		msink := metrics.NewSink(metrics.SinkConfig{Agent: o.name})
		srv, err := serveMetrics(o.metricsAddr, msink)
		if err != nil {
			return err
		}
		defer srv.Close()
		fleetOptions = append(fleetOptions, serve.WithMetrics(msink))
	}
	a, err := dist.NewAgent(dist.AgentConfig{
		Name:            o.name,
		Addr:            o.agentAddr,
		AdvertiseURL:    o.advertiseURL,
		MasterURL:       o.masterURL,
		HeartbeatEvery:  o.heartbeatEvery,
		CheckpointEvery: o.checkpointEvery,
		Sink:            sink,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}, fleetOptions...)
	if err != nil {
		return err
	}
	if err := a.Start(ctx); err != nil {
		return err
	}
	err = a.Wait()
	if cerr := closeSink(); err == nil {
		err = cerr
	}
	return err
}

// serveMetrics starts a /metrics scrape endpoint for an agent's sink.
func serveMetrics(addr string, msink *metrics.Sink) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", msink.Handler())
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "transcode: metrics server: %v\n", err)
		}
	}()
	fmt.Printf("metrics: serving http://%s/metrics\n", ln.Addr())
	return srv, nil
}

// runSubmit drives -users sessions into a master's front door (the same
// endpoint shape works against a standalone agent, which answers without
// the routed agent name). Sources are sent by spec — regenerated on the
// serving node — so the submitting process streams no pixels.
func runSubmit(ctx context.Context, o distOpts) error {
	client := dist.DefaultClient()
	classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone, medgen.SpinalCord}
	motions := []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}
	for i := 0; i < o.users; i++ {
		vc := medgen.Default()
		vc.Width, vc.Height = o.width, o.height
		vc.Frames = o.frames
		vc.Class = classes[i%len(classes)]
		vc.Motion = motions[i%len(motions)]
		vc.Seed = o.seed + int64(i)
		src, err := dist.NewMedgenSource(vc, "")
		if err != nil {
			return err
		}
		spec, err := src.Spec()
		if err != nil {
			return err
		}
		req := dist.SubmitRequest{
			Version:  dist.ProtocolVersion,
			Source:   spec,
			Config:   core.DefaultSessionConfig(),
			Tenant:   o.tenant,
			Priority: o.priority,
		}
		var resp dist.RoutedSubmitResponse
		if err := client.PostJSON(ctx, o.submitURL+"/v1/submit", req, &resp); err != nil {
			return fmt.Errorf("submit user %d: %w", i, err)
		}
		if resp.Agent != "" {
			fmt.Printf("user %2d (%s) → agent %s shard %d session %d\n",
				i, vc.Class, resp.Agent, resp.Shard, resp.Session)
		} else {
			fmt.Printf("user %2d (%s) → shard %d session %d\n", i, vc.Class, resp.Shard, resp.Session)
		}
	}
	return nil
}
