// Command transcode runs the full content-aware pipeline on one synthetic
// bio-medical video and prints per-GOP statistics: the tile structure from
// the content-aware re-tiler, per-tile texture/motion classes and QPs, and
// the frame-level rate/quality/time outcomes.
//
// With -users N (N > 1) it instead drives the fleet serving API
// (internal/serve): N sessions of mixed classes stream through -shards
// parallel core.Server shards behind the consistent-hash dispatcher, with
// the overload-aware admission ladder and measurement-calibrated workload
// estimation enabled. -allocator selects the stage-D2 policy by registry
// name, -sink selects the telemetry sink, and -luts persists the warmed
// workload LUTs across restarts.
//
// Examples:
//
//	transcode -class brain -motion rotate -frames 48 -mode proposed
//	transcode -users 8 -frames 32
//	transcode -shards 3 -users 12 -frames 16 -sink jsonl -luts /tmp/luts.json
//	transcode -users 6 -allocator baseline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		classFlag  = flag.String("class", "brain", "body-part class: brain|chest|bone|spinal-cord|ligament")
		motionFlag = flag.String("motion", "rotate", "motion script: still|pan|rotate|sweep")
		frames     = flag.Int("frames", 48, "number of frames")
		width      = flag.Int("width", 640, "frame width")
		height     = flag.Int("height", 480, "frame height")
		seed       = flag.Int64("seed", 1, "generator seed")
		modeFlag   = flag.String("mode", "proposed", "pipeline mode: proposed|baseline")
		workers    = flag.Int("workers", 4, "tile-encoding workers")
		verbose    = flag.Bool("v", false, "print per-frame rows")
		yuvPath    = flag.String("yuv", "", "transcode a raw planar I420 file instead of a synthetic study (uses -width/-height/-class)")
		users      = flag.Int("users", 1, "serve N concurrent synthetic sessions through the fleet serving loop")
		shards     = flag.Int("shards", 1, "number of platform shards behind the fleet dispatcher")
		allocator  = flag.String("allocator", sched.NameContentAware,
			fmt.Sprintf("stage-D2 allocation policy: %s", strings.Join(sched.Names(), "|")))
		sinkFlag = flag.String("sink", "report", "telemetry sink: report|jsonl|jsonl:PATH|none")
		lutsPath = flag.String("luts", "", "persist warmed workload LUTs at PATH (loaded on start, saved on clean exit)")
	)
	flag.Parse()

	// An interrupt cancels cleanly at the next tile boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *users > 1 || *shards > 1 {
		err := serveFleet(ctx, fleetOpts{
			users: *users, shards: *shards, width: *width, height: *height,
			frames: *frames, seed: *seed, mode: *modeFlag,
			allocator: *allocator, sink: *sinkFlag, luts: *lutsPath,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "transcode: interrupted")
				os.Exit(130)
			}
			fatalf("%v", err)
		}
		return
	}

	cfg := medgen.Default()
	cfg.Width, cfg.Height = *width, *height
	cfg.Frames = *frames
	cfg.Seed = *seed
	var ok bool
	if cfg.Class, ok = classByName(*classFlag); !ok {
		fatalf("unknown class %q", *classFlag)
	}
	if cfg.Motion, ok = motionByName(*motionFlag); !ok {
		fatalf("unknown motion %q", *motionFlag)
	}
	var src core.FrameSource
	if *yuvPath != "" {
		s, err := core.NewYUVFileSource(*yuvPath, cfg.Width, cfg.Height, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
		cfg.Frames = s.Len()
	} else {
		gen, err := medgen.NewGenerator(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		s, err := core.SourceFromGenerator(gen, cfg.Frames, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
	}

	scfg := core.DefaultSessionConfig()
	scfg.Workers = *workers
	switch *modeFlag {
	case "proposed":
		scfg.Mode = core.ModeProposed
	case "baseline":
		scfg.Mode = core.ModeBaseline
	default:
		fatalf("unknown mode %q", *modeFlag)
	}

	sess, err := core.NewSession(0, src, scfg, workload.NewLUT())
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("transcoding %s/%s %dx%d @ %g fps, %d frames, mode %s\n\n",
		cfg.Class, cfg.Motion, cfg.Width, cfg.Height, cfg.FPS, cfg.Frames, scfg.Mode)

	gopIdx := 0
	for !sess.Finished() {
		gop, err := sess.EncodeGOPContext(ctx, *workers)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "transcode: interrupted")
			os.Exit(130)
		}
		if err != nil {
			fatalf("GOP %d: %v", gopIdx, err)
		}
		fmt.Printf("GOP %d: %d tiles, PSNR %.1f dB, %.0f kbps, CPU %v\n",
			gop.Index, gop.Grid.NumTiles(), gop.MeanPSNR, gop.MeanKbps, gop.CPUTime.Round(100))
		tbl := trace.NewTable("", "tile", "rect", "region", "texture", "motion", "CV")
		for _, tc := range gop.Contents {
			tbl.AddRow(fmt.Sprint(tc.Tile.Index), tc.Tile.Rect.String(), tc.Tile.Region.String(),
				tc.Texture.String(), tc.Motion.String(), fmt.Sprintf("%.3f", tc.CV))
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *verbose {
			for _, fr := range gop.Frames {
				fmt.Printf("  frame %3d [%s] %6d bits  %.1f dB  %v\n",
					fr.Frame, fr.Type, fr.Bits, fr.PSNR, fr.EncodeTime.Round(100))
			}
		}
		fmt.Println()
		gopIdx++
	}
}

type fleetOpts struct {
	users, shards, width, height, frames int
	seed                                 int64
	mode, allocator, sink, luts          string
}

// buildSink maps the -sink flag to a serve.Sink; the returned RingSink is
// non-nil when the final report should be reconstructed from it.
func buildSink(spec string) (serve.Sink, *serve.RingSink, error) {
	switch {
	case spec == "none":
		return nil, nil, nil
	case spec == "report":
		ring := serve.NewRingSink(256)
		return ring, ring, nil
	case spec == "jsonl":
		return serve.NewJSONLSink(os.Stdout), nil, nil
	case strings.HasPrefix(spec, "jsonl:"):
		f, err := os.Create(strings.TrimPrefix(spec, "jsonl:"))
		if err != nil {
			return nil, nil, err
		}
		return serve.NewJSONLSink(f), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown sink %q (report|jsonl|jsonl:PATH|none)", spec)
	}
}

// serveFleet drives the fleet serving API: n synthetic sessions of
// rotating classes/motions are submitted up front, routed across the
// shards by workload class, and served with the admission ladder and
// estimate calibration on.
func serveFleet(ctx context.Context, o fleetOpts) error {
	mode := core.ModeProposed
	switch o.mode {
	case "proposed":
	case "baseline":
		mode = core.ModeBaseline
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}
	sink, ring, err := buildSink(o.sink)
	if err != nil {
		return err
	}

	// Cap each shard's live sessions at an even share of the submitted
	// users: the synthetic corpus has only a handful of workload classes,
	// so pure class routing can pile everyone on one shard — the capacity
	// bound spills the overflow to the least-loaded shards.
	capacity := (o.users + o.shards - 1) / o.shards
	fleetOptions := []serve.Option{
		serve.WithShards(o.shards),
		serve.WithShardCapacity(capacity),
		serve.WithAllocator(o.allocator),
		serve.WithCalibration(core.CalibrationConfig{Enabled: true}),
		serve.WithAdmission(core.AdmissionConfig{Enabled: true}),
		serve.WithRoundHook(func(shard int, out *core.GOPOutcome) {
			fmt.Printf("shard %d round %2d: admitted %v", shard, out.Round, out.AdmittedUsers)
			if len(out.RejectedUsers) > 0 {
				fmt.Printf(", waiting %v", out.RejectedUsers)
			}
			if len(out.TimedOut) > 0 {
				fmt.Printf(", timed out %v", out.TimedOut)
			}
			if out.EstimateTiles > 0 {
				fmt.Printf(", estimate error %.1f%%", 100*out.EstimateErr)
			}
			fmt.Printf(", %.1f W\n", out.Energy.AvgPowerW)
		}),
	}
	if sink != nil {
		fleetOptions = append(fleetOptions, serve.WithSink(sink))
	}
	if o.luts != "" {
		fleetOptions = append(fleetOptions, serve.WithLUTStore(o.luts))
	}
	fleet, err := serve.New(fleetOptions...)
	if err != nil {
		return err
	}

	classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone, medgen.SpinalCord}
	motions := []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}
	for i := 0; i < o.users; i++ {
		vc := medgen.Default()
		vc.Width, vc.Height = o.width, o.height
		vc.Frames = o.frames
		vc.Class = classes[i%len(classes)]
		vc.Motion = motions[i%len(motions)]
		vc.Seed = o.seed + int64(i)
		gen, err := medgen.NewGenerator(vc)
		if err != nil {
			return err
		}
		src, err := core.SourceFromGenerator(gen, vc.Frames, vc.FPS, vc.Class.String())
		if err != nil {
			return err
		}
		scfg := core.DefaultSessionConfig()
		scfg.Mode = mode
		p, err := fleet.Submit(src, scfg)
		if err != nil {
			return err
		}
		fmt.Printf("user %2d (%s) → shard %d (home %d)\n",
			i, vc.Class, p.Shard, fleet.HomeShard(vc.Class.String()))
	}
	fleet.Close()

	fmt.Printf("\nserving %d users on %d shard(s) of %d cores each, allocator %q\n\n",
		o.users, o.shards, mpsoc.XeonE5_2667V4().Cores, o.allocator)
	rep, runErr := fleet.Run(ctx)

	fmt.Printf("\nfleet report: %d rounds over %d shards, %d/%d sessions completed (%d rejected, %d failed)\n",
		rep.Rounds, len(rep.Shards), rep.Completed, rep.Submitted, rep.Rejected, rep.Failed)
	fmt.Printf("  %d frames in %d GOP reports, %.1f J total (avg %.1f W, peak %.1f W), %d deadline misses\n",
		rep.FramesEncoded, rep.GOPReports, rep.Energy.EnergyJ, rep.Energy.AvgPowerW(), rep.Energy.PeakPowerW, rep.Energy.DeadlineMisses)
	for _, sr := range rep.Shards {
		status := "ok"
		if sr.Err != nil {
			status = sr.Err.Error()
		}
		fmt.Printf("  shard %d: %d rounds, %d completed, %d restarts [%s]\n",
			sr.Shard, sr.Report.Rounds, len(sr.Report.Completed), sr.Restarts, status)
	}
	if ring != nil {
		if e, tiles := ring.Report(-1).MeanEstimateErr(0); tiles > 0 {
			fmt.Printf("  mean stage-D1 estimate error %.1f%% over %d tiles (ring sink, %d rounds dropped)\n",
				100*e, tiles, ring.Dropped())
		}
	}
	if o.luts != "" && runErr == nil {
		fmt.Printf("  workload LUTs saved to %s\n", o.luts)
	}
	return runErr
}

func classByName(name string) (medgen.Class, bool) {
	for c := medgen.Class(0); int(c) < medgen.NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

func motionByName(name string) (medgen.MotionKind, bool) {
	for _, m := range []medgen.MotionKind{medgen.Still, medgen.Pan, medgen.Rotate, medgen.Sweep} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "transcode: "+format+"\n", args...)
	os.Exit(1)
}
