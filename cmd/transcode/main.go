// Command transcode runs the full content-aware pipeline on one synthetic
// bio-medical video and prints per-GOP statistics: the tile structure from
// the content-aware re-tiler, per-tile texture/motion classes and QPs, and
// the frame-level rate/quality/time outcomes.
//
// With -users N (N > 1) it instead drives the fleet serving API
// (internal/serve): N sessions of mixed classes stream through -shards
// parallel core.Server shards behind the consistent-hash dispatcher, with
// the overload-aware admission ladder and measurement-calibrated workload
// estimation enabled. -allocator selects the stage-D2 policy by registry
// name, -sink selects the telemetry sink, and -luts persists the warmed
// workload LUTs across restarts.
//
// Examples:
//
//	transcode -class brain -motion rotate -frames 48 -mode proposed
//	transcode -users 8 -frames 32
//	transcode -shards 3 -users 12 -frames 16 -sink jsonl -luts /tmp/luts.json
//	transcode -users 6 -allocator baseline
//	transcode -users 9 -tenants-config tenants.json -tenant-plan batch:6,clinic:2,er:1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/metrics"
	"repro/internal/mpsoc"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/tenancy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		classFlag  = flag.String("class", "brain", "body-part class: brain|chest|bone|spinal-cord|ligament")
		motionFlag = flag.String("motion", "rotate", "motion script: still|pan|rotate|sweep")
		frames     = flag.Int("frames", 48, "number of frames")
		width      = flag.Int("width", 640, "frame width")
		height     = flag.Int("height", 480, "frame height")
		seed       = flag.Int64("seed", 1, "generator seed")
		modeFlag   = flag.String("mode", "proposed", "pipeline mode: proposed|baseline")
		workers    = flag.Int("workers", 4, "tile-encoding workers")
		verbose    = flag.Bool("v", false, "print per-frame rows")
		yuvPath    = flag.String("yuv", "", "transcode a raw planar I420 file instead of a synthetic study (uses -width/-height/-class)")
		users      = flag.Int("users", 1, "serve N concurrent synthetic sessions through the fleet serving loop")
		shards     = flag.Int("shards", 1, "initial number of platform shards behind the fleet dispatcher")
		allocator  = flag.String("allocator", sched.NameContentAware,
			fmt.Sprintf("stage-D2 allocation policy: %s", strings.Join(sched.Names(), "|")))
		sinkFlag = flag.String("sink", "report", "telemetry sink: report|jsonl|jsonl:PATH|none")
		lutsPath = flag.String("luts", "", "persist warmed workload LUTs at PATH (loaded on start, saved on clean exit)")

		tenantFlag = flag.String("tenant", "", "tenant id submitted sessions belong to (empty = the default tenant)")
		tenantsCfg = flag.String("tenants-config", "", "per-tenant QoS policy (weights, priority classes, admission rates) as tenancy JSON at PATH")
		priorityFl = flag.Int("priority", 0, "priority class for submitted sessions (0 = tenant default / best effort; higher preempts under overload)")
		tenantPlan = flag.String("tenant-plan", "", "assign the -users sessions to tenants in submission order: TENANT[:COUNT][@PRIORITY],... (overrides -tenant/-priority; counts must sum to -users)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to PATH, stopped and flushed on clean shutdown")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to PATH on clean shutdown (after a final GC)")

		minShards  = flag.Int("min-shards", 0, "autoscaler floor (0 = -shards); the fleet never shrinks below this")
		maxShards  = flag.Int("max-shards", 0, "autoscaler ceiling (0 = -shards); the fleet never grows beyond this")
		targetUtil = flag.Float64("target-util", 0.75, "autoscaler target demand-normalized utilization (summed core demand over summed capacity)")
		scaleAfter = flag.Int("scale-window", 2, "consecutive saturated/idle observations before the autoscaler resizes")
		resizeAt   = flag.String("resize-at", "", "forced resize schedule ROUND:SHARDS[,ROUND:SHARDS...] on total fleet rounds (e.g. 6:4,14:3)")
		stagger    = flag.Int("stagger", 0, "submit one user every N fleet rounds instead of all upfront (0 = upfront)")
		shardSess  = flag.Int("shard-sessions", 0, "cap each shard's live sessions for routing; overflow spills to the least-utilized shard (0 = even share of the users)")

		shardCores = flag.String("shard-cores", "", "per-shard core counts N[,N...] (e.g. 8,16,32): builds a heterogeneous fleet (overrides -shards) and turns on demand-aware placement")
		pixPerCore = flag.Float64("pixels-per-core", 0, "demand-aware placement price: luma pixels per second one core transcodes (0 = serve default)")
		fourkEvery = flag.Int("fourk-every", 0, "give every Nth user a doubled-resolution stream in a separate \"-4k\" workload class (0 = off)")

		hotClass  = flag.String("hot-class", "", "give every user this body-part class (skews the class routing onto one shard)")
		rebFactor = flag.Float64("rebalance-factor", 0, "shed a shard whose utilization exceeds this multiple of the fleet mean (0 = rebalancing off, must be > 1)")
		rebWindow = flag.Int("rebalance-window", 2, "consecutive hot rounds before a shard sheds sessions")

		metricsAddr  = flag.String("metrics-addr", "", "serve a Prometheus /metrics endpoint on ADDR (e.g. 127.0.0.1:9090) during fleet runs")
		metricsGrace = flag.Duration("metrics-grace", 0, "keep the /metrics endpoint up this long after the run drains (for a final scrape)")
		costJoule    = flag.Float64("cost-per-joule", 0, "cost-model dollars per joule behind repro_cost_dollars_total")
		costMiss     = flag.Float64("cost-per-miss", 0, "cost-model dollars per frame-deadline miss")

		masterAddr = flag.String("master", "", "run the distributed master (routing + supervision) on ADDR (e.g. 127.0.0.1:7600)")
		agentAddr  = flag.String("agent", "", "run one distributed agent node on ADDR; -name identifies it, -master-url registers it")
		submitURL  = flag.String("submit", "", "submit -users synthetic sessions to the master (or agent) at URL and exit")

		agentName    = flag.String("name", "", "this agent's stable identity on the master's ring (required with -agent)")
		masterURL    = flag.String("master-url", "", "master base URL the agent heartbeats to (empty = standalone agent)")
		advertiseURL = flag.String("advertise-url", "", "base URL peers reach this agent at (empty = the bound address)")
		hbEvery      = flag.Duration("heartbeat-every", time.Second, "agent heartbeat period")
		hbGrace      = flag.Duration("heartbeat-grace", 5*time.Second, "master-side silence before an agent is declared dead and failed over")
		ckptEvery    = flag.Int("checkpoint-every", 2, "agent wire-checkpoint cadence in settled rounds per shard")
		eventsPath   = flag.String("events", "", "master operational journal (agent deaths, re-imports) as JSONL at PATH")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProfiles()

	if *masterAddr != "" || *agentAddr != "" || *submitURL != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		o := distOpts{
			masterAddr: *masterAddr, agentAddr: *agentAddr, submitURL: *submitURL,
			name: *agentName, masterURL: *masterURL, advertiseURL: *advertiseURL,
			heartbeatEvery: *hbEvery, heartbeatGrace: *hbGrace,
			checkpointEvery: *ckptEvery, eventsPath: *eventsPath,
			users: *users, shards: *shards, width: *width, height: *height,
			frames: *frames, seed: *seed,
			allocator: *allocator, sink: *sinkFlag, metricsAddr: *metricsAddr,
			tenant: *tenantFlag, priority: *priorityFl, tenantsConfig: *tenantsCfg,
		}
		var err error
		switch {
		case *masterAddr != "":
			err = runMaster(ctx, o)
		case *agentAddr != "":
			err = runAgent(ctx, o)
		default:
			err = runSubmit(ctx, o)
		}
		if err != nil && !errors.Is(err, context.Canceled) {
			fatalf("%v", err)
		}
		return
	}

	cores, err := parseShardCores(*shardCores)
	if err != nil {
		fatalf("%v", err)
	}

	// An interrupt cancels cleanly at the next tile boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *users > 1 || *shards > 1 || len(cores) > 0 {
		err := serveFleet(ctx, fleetOpts{
			users: *users, shards: *shards, width: *width, height: *height,
			frames: *frames, seed: *seed, mode: *modeFlag,
			allocator: *allocator, sink: *sinkFlag, luts: *lutsPath,
			minShards: *minShards, maxShards: *maxShards,
			targetUtil: *targetUtil, scaleWindow: *scaleAfter,
			resizeAt: *resizeAt, stagger: *stagger, shardSessions: *shardSess,
			shardCores: cores, pixPerCore: *pixPerCore, fourkEvery: *fourkEvery,
			hotClass: *hotClass, rebFactor: *rebFactor, rebWindow: *rebWindow,
			metricsAddr: *metricsAddr, metricsGrace: *metricsGrace,
			costJoule: *costJoule, costMiss: *costMiss,
			tenant: *tenantFlag, priority: *priorityFl,
			tenantsConfig: *tenantsCfg, tenantPlan: *tenantPlan,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "transcode: interrupted")
				os.Exit(130)
			}
			fatalf("%v", err)
		}
		return
	}

	cfg := medgen.Default()
	cfg.Width, cfg.Height = *width, *height
	cfg.Frames = *frames
	cfg.Seed = *seed
	var ok bool
	if cfg.Class, ok = classByName(*classFlag); !ok {
		fatalf("unknown class %q", *classFlag)
	}
	if cfg.Motion, ok = motionByName(*motionFlag); !ok {
		fatalf("unknown motion %q", *motionFlag)
	}
	var src core.FrameSource
	if *yuvPath != "" {
		s, err := core.NewYUVFileSource(*yuvPath, cfg.Width, cfg.Height, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
		cfg.Frames = s.Len()
	} else {
		gen, err := medgen.NewGenerator(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		s, err := core.SourceFromGenerator(gen, cfg.Frames, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
	}

	scfg := core.DefaultSessionConfig()
	scfg.Workers = *workers
	switch *modeFlag {
	case "proposed":
		scfg.Mode = core.ModeProposed
	case "baseline":
		scfg.Mode = core.ModeBaseline
	default:
		fatalf("unknown mode %q", *modeFlag)
	}

	sess, err := core.NewSession(0, src, scfg, workload.NewLUT())
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("transcoding %s/%s %dx%d @ %g fps, %d frames, mode %s\n\n",
		cfg.Class, cfg.Motion, cfg.Width, cfg.Height, cfg.FPS, cfg.Frames, scfg.Mode)

	gopIdx := 0
	for !sess.Finished() {
		gop, err := sess.EncodeGOPContext(ctx, *workers)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "transcode: interrupted")
			os.Exit(130)
		}
		if err != nil {
			fatalf("GOP %d: %v", gopIdx, err)
		}
		fmt.Printf("GOP %d: %d tiles, PSNR %.1f dB, %.0f kbps, CPU %v\n",
			gop.Index, gop.Grid.NumTiles(), gop.MeanPSNR, gop.MeanKbps, gop.CPUTime.Round(100))
		tbl := trace.NewTable("", "tile", "rect", "region", "texture", "motion", "CV")
		for _, tc := range gop.Contents {
			tbl.AddRow(fmt.Sprint(tc.Tile.Index), tc.Tile.Rect.String(), tc.Tile.Region.String(),
				tc.Texture.String(), tc.Motion.String(), fmt.Sprintf("%.3f", tc.CV))
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *verbose {
			for _, fr := range gop.Frames {
				fmt.Printf("  frame %3d [%s] %6d bits  %.1f dB  %v\n",
					fr.Frame, fr.Type, fr.Bits, fr.PSNR, fr.EncodeTime.Round(100))
			}
		}
		fmt.Println()
		gopIdx++
	}
}

type fleetOpts struct {
	users, shards, width, height, frames int
	seed                                 int64
	mode, allocator, sink, luts          string

	minShards, maxShards int
	targetUtil           float64
	scaleWindow          int
	resizeAt             string
	stagger              int
	shardSessions        int

	shardCores []int
	pixPerCore float64
	fourkEvery int

	hotClass  string
	rebFactor float64
	rebWindow int

	metricsAddr  string
	metricsGrace time.Duration
	costJoule    float64
	costMiss     float64

	tenant        string
	priority      int
	tenantsConfig string
	tenantPlan    string
}

// tenantAssignment is one user's QoS identity under -tenant-plan.
type tenantAssignment struct {
	tenant   string
	priority int
}

// parseTenantPlan expands "TENANT[:COUNT][@PRIORITY],..." into one
// assignment per user, in plan order — the order matters under -stagger,
// where later entries arrive later (e.g. "batch:6,clinic:2,er:1@9" ends
// with one emergency-priority arrival onto an already-loaded fleet).
func parseTenantPlan(spec string, users int) ([]tenantAssignment, error) {
	if spec == "" {
		return nil, nil
	}
	var out []tenantAssignment
	for _, part := range strings.Split(spec, ",") {
		entry := strings.TrimSpace(part)
		pri := 0
		if at := strings.IndexByte(entry, '@'); at >= 0 {
			if _, err := fmt.Sscanf(entry[at+1:], "%d", &pri); err != nil {
				return nil, fmt.Errorf("bad -tenant-plan entry %q (want TENANT[:COUNT][@PRIORITY])", part)
			}
			entry = entry[:at]
		}
		count := 1
		if colon := strings.IndexByte(entry, ':'); colon >= 0 {
			if _, err := fmt.Sscanf(entry[colon+1:], "%d", &count); err != nil || count < 1 {
				return nil, fmt.Errorf("bad -tenant-plan entry %q (want TENANT[:COUNT][@PRIORITY])", part)
			}
			entry = entry[:colon]
		}
		if entry == "" {
			return nil, fmt.Errorf("bad -tenant-plan entry %q (empty tenant id)", part)
		}
		for i := 0; i < count; i++ {
			out = append(out, tenantAssignment{tenant: entry, priority: pri})
		}
	}
	if len(out) != users {
		return nil, fmt.Errorf("-tenant-plan covers %d users, -users is %d", len(out), users)
	}
	return out, nil
}

// parseShardCores parses the -shard-cores list ("8,16,32") into per-shard
// core counts; empty input means a homogeneous fleet.
func parseShardCores(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shard-cores entry %q (want a positive core count)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// buildSink maps the -sink flag to a serve.Sink; the returned RingSink
// is non-nil when the final report should be reconstructed from it, and
// the close func flushes a buffered sink (call it after Run returns).
// JSONL sinks are buffered with the block policy: a slow pipe no longer
// stalls serving through the sink lock, and no line is ever dropped.
func buildSink(spec string) (serve.Sink, *serve.RingSink, func() error, error) {
	noop := func() error { return nil }
	switch {
	case spec == "none":
		return nil, nil, noop, nil
	case spec == "report":
		ring := serve.NewRingSink(256)
		return ring, ring, noop, nil
	case spec == "jsonl":
		s := serve.NewBufferedJSONLSink(os.Stdout, 1024, serve.JSONLBlock)
		return s, nil, s.Close, nil
	case strings.HasPrefix(spec, "jsonl:"):
		f, err := os.Create(strings.TrimPrefix(spec, "jsonl:"))
		if err != nil {
			return nil, nil, nil, err
		}
		s := serve.NewBufferedJSONLSink(f, 1024, serve.JSONLBlock)
		return s, nil, func() error {
			serr := s.Close()
			if cerr := f.Close(); serr == nil {
				serr = cerr
			}
			return serr
		}, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown sink %q (report|jsonl|jsonl:PATH|none)", spec)
	}
}

// parseResizeAt parses "ROUND:SHARDS[,ROUND:SHARDS...]" into the serve
// autoscaler's forced schedule. The scaling policy itself lives in
// internal/serve (WithAutoscale); this command only maps flags to config.
func parseResizeAt(spec string) ([]serve.ScheduledResize, error) {
	if spec == "" {
		return nil, nil
	}
	var steps []serve.ScheduledResize
	for _, part := range strings.Split(spec, ",") {
		var s serve.ScheduledResize
		if _, err := fmt.Sscanf(part, "%d:%d", &s.AfterRounds, &s.Shards); err != nil {
			return nil, fmt.Errorf("bad -resize-at entry %q (want ROUND:SHARDS)", part)
		}
		steps = append(steps, s)
	}
	sort.Slice(steps, func(a, b int) bool { return steps[a].AfterRounds < steps[b].AfterRounds })
	return steps, nil
}

// serveFleet drives the fleet serving API: n synthetic sessions of
// rotating classes/motions are routed across the shards by workload
// class and served with the admission ladder (including rate-rung
// recovery), estimate calibration and — when -min-shards/-max-shards
// span a range or -resize-at forces it — the serve-layer autoscaler
// (serve.WithAutoscale). All scaling policy lives in internal/serve;
// this function only maps flags onto configs.
func serveFleet(ctx context.Context, o fleetOpts) error {
	mode := core.ModeProposed
	switch o.mode {
	case "proposed":
	case "baseline":
		mode = core.ModeBaseline
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}
	// A heterogeneous core list defines the shard count.
	if len(o.shardCores) > 0 {
		o.shards = len(o.shardCores)
	}
	if o.minShards <= 0 {
		o.minShards = o.shards
	}
	if o.maxShards <= 0 {
		o.maxShards = o.shards
	}
	if o.minShards > o.shards || o.maxShards < o.shards {
		return fmt.Errorf("-shards %d outside [-min-shards %d, -max-shards %d]", o.shards, o.minShards, o.maxShards)
	}
	forced, err := parseResizeAt(o.resizeAt)
	if err != nil {
		return err
	}
	// The autoscaler widens its bounds to cover the forced schedule;
	// mirror that here for the capacity heuristic and the banner.
	for _, st := range forced {
		if st.Shards > o.maxShards {
			o.maxShards = st.Shards
		}
		if st.Shards < o.minShards {
			o.minShards = st.Shards
		}
	}
	elastic := o.minShards < o.maxShards || len(forced) > 0
	var hot medgen.Class
	if o.hotClass != "" {
		var ok bool
		if hot, ok = classByName(o.hotClass); !ok {
			return fmt.Errorf("unknown class %q", o.hotClass)
		}
	}
	sink, ring, closeSink, err := buildSink(o.sink)
	if err != nil {
		return err
	}
	plan, err := parseTenantPlan(o.tenantPlan, o.users)
	if err != nil {
		return err
	}

	// Cap each shard's live sessions at an even share of the submitted
	// users: the synthetic corpus has only a handful of workload classes,
	// so pure class routing can pile everyone on one shard — the capacity
	// bound spills the overflow to the least-utilized shards. An elastic
	// run caps shards at an even share of the fleet's widest size, so a
	// grown fleet can actually absorb the spill; tighten it explicitly
	// with -shard-sessions when the run should spill earlier. A
	// heterogeneous -shard-cores run leaves the session count unbounded —
	// demand-aware placement weighs sessions by core demand, which a
	// uniform session cap would fight. A skewed -hot-class run is
	// unbounded too: the point is to let one shard run hot and watch the
	// rebalancer shed it.
	capacity := (o.users + o.shards - 1) / o.shards
	if elastic {
		capacity = (o.users + o.maxShards - 1) / o.maxShards
	}
	if o.hotClass != "" || len(o.shardCores) > 0 {
		capacity = 0
	}
	if o.shardSessions > 0 {
		capacity = o.shardSessions
	}
	var fleet *serve.Fleet
	// Fleet-wide settled-round counter pacing staggered arrivals (hooks
	// run on serving goroutines).
	var totalRounds atomic.Int64
	submitted := 0
	var submitMu sync.Mutex

	submitUser := func(i int) error {
		classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone, medgen.SpinalCord}
		motions := []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}
		vc := medgen.Default()
		vc.Width, vc.Height = o.width, o.height
		vc.Frames = o.frames
		vc.Class = classes[i%len(classes)]
		vc.Motion = motions[i%len(motions)]
		vc.Seed = o.seed + int64(i)
		if o.hotClass != "" {
			vc.Class = hot
		}
		className := vc.Class.String()
		// Every Nth user streams at four times the area under a separate
		// "-4k" workload class: its demand estimate and LUTs must not mix
		// with the base class's.
		if o.fourkEvery > 0 && (i+1)%o.fourkEvery == 0 {
			vc.Width *= 2
			vc.Height *= 2
			className += "-4k"
		}
		gen, err := medgen.NewGenerator(vc)
		if err != nil {
			return err
		}
		src, err := core.SourceFromGenerator(gen, vc.Frames, vc.FPS, className)
		if err != nil {
			return err
		}
		scfg := core.DefaultSessionConfig()
		scfg.Mode = mode
		tn, pr := o.tenant, o.priority
		if plan != nil {
			tn, pr = plan[i].tenant, plan[i].priority
		}
		p, err := fleet.SubmitWith(serve.SubmitRequest{
			Source: src, Config: scfg, Tenant: tn, Priority: pr,
		})
		if err != nil {
			return err
		}
		if tn != "" {
			fmt.Printf("user %2d (%s, tenant %s) → shard %d (home %d)\n",
				i, className, tn, p.Shard, fleet.HomeShard(className))
		} else {
			fmt.Printf("user %2d (%s) → shard %d (home %d)\n",
				i, className, p.Shard, fleet.HomeShard(className))
		}
		return nil
	}

	fleetOptions := []serve.Option{
		serve.WithShardCapacity(capacity),
	}
	if o.tenantsConfig != "" {
		reg, err := tenancy.LoadFile(o.tenantsConfig)
		if err != nil {
			return err
		}
		fleetOptions = append(fleetOptions, serve.WithTenancy(reg))
	}
	fleetOptions = append(fleetOptions,
		serve.WithAllocator(o.allocator),
		serve.WithCalibration(core.CalibrationConfig{Enabled: true}),
		serve.WithAdmission(core.AdmissionConfig{Enabled: true, RecoverAfterRounds: 3}),
		serve.WithRoundHook(func(shard int, out *core.GOPOutcome) {
			fmt.Printf("shard %d round %2d: admitted %v", shard, out.Round, out.AdmittedUsers)
			if len(out.RejectedUsers) > 0 {
				fmt.Printf(", waiting %v", out.RejectedUsers)
			}
			if len(out.TimedOut) > 0 {
				fmt.Printf(", timed out %v", out.TimedOut)
			}
			if len(out.Recovered) > 0 {
				fmt.Printf(", rate-restored %v", out.Recovered)
			}
			if out.EstimateTiles > 0 {
				fmt.Printf(", estimate error %.1f%%", 100*out.EstimateErr)
			}
			fmt.Printf(", %.1f W\n", out.Energy.AvgPowerW)

			rounds := int(totalRounds.Add(1))
			// Staggered churn: one new arrival every -stagger fleet
			// rounds; the queue closes after the last one.
			if o.stagger > 0 {
				submitMu.Lock()
				for submitted < o.users && rounds >= submitted*o.stagger {
					if err := submitUser(submitted); err != nil {
						fmt.Fprintf(os.Stderr, "transcode: submit user %d: %v\n", submitted, err)
					}
					submitted++
				}
				// Never let the service idle out with users still pending:
				// if this round retired the last live session before the
				// next stagger threshold, no further round (and hence no
				// further hook) would ever fire — submit the next user now.
				if submitted < o.users && fleet.Load() == 0 {
					if err := submitUser(submitted); err != nil {
						fmt.Fprintf(os.Stderr, "transcode: submit user %d: %v\n", submitted, err)
					}
					submitted++
				}
				if submitted == o.users {
					submitted++ // close once
					fleet.Close()
				}
				submitMu.Unlock()
			}
		}),
	)
	if len(o.shardCores) > 0 {
		// Heterogeneous fleet: one platform per entry, cores overridden,
		// plus demand-aware placement so heavy classes steer to the big
		// shards instead of wherever their ring arc happens to land.
		platforms := make([]*mpsoc.Platform, len(o.shardCores))
		for i, n := range o.shardCores {
			p := mpsoc.XeonE5_2667V4()
			p.Cores = n
			platforms[i] = p
		}
		fleetOptions = append(fleetOptions,
			serve.WithPlatforms(platforms...),
			serve.WithDemandPlacement(serve.PlacementConfig{PixelsPerCore: o.pixPerCore}),
		)
	} else {
		fleetOptions = append(fleetOptions, serve.WithShards(o.shards))
		if o.pixPerCore > 0 {
			fleetOptions = append(fleetOptions,
				serve.WithDemandPlacement(serve.PlacementConfig{PixelsPerCore: o.pixPerCore}))
		}
	}
	if elastic {
		fleetOptions = append(fleetOptions, serve.WithAutoscale(serve.AutoscaleConfig{
			MinShards:  o.minShards,
			MaxShards:  o.maxShards,
			TargetUtil: o.targetUtil,
			Window:     o.scaleWindow,
			Schedule:   forced,
			OnResize: func(from, to int, reason string) {
				fmt.Printf("autoscaler: resizing fleet %d → %d shards (%s)\n", from, to, reason)
			},
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "autoscaler: resize failed: %v\n", err)
			},
		}))
	}
	if o.rebFactor > 0 {
		fleetOptions = append(fleetOptions, serve.WithRebalance(serve.RebalanceConfig{
			Factor:  o.rebFactor,
			Windows: o.rebWindow,
		}))
	}
	if sink != nil {
		fleetOptions = append(fleetOptions, serve.WithSink(sink))
	}
	var msrv *http.Server
	if o.metricsAddr != "" {
		msink := metrics.NewSink(metrics.SinkConfig{
			Cost: metrics.CostModel{
				DollarsPerJoule:        o.costJoule,
				DollarsPerDeadlineMiss: o.costMiss,
			},
		})
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", msink.Handler())
		msrv = &http.Server{Handler: mux}
		go func() {
			if err := msrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "transcode: metrics server: %v\n", err)
			}
		}()
		defer msrv.Close()
		fmt.Printf("metrics: serving http://%s/metrics\n", ln.Addr())
		fleetOptions = append(fleetOptions, serve.WithMetrics(msink))
	}
	if o.luts != "" {
		fleetOptions = append(fleetOptions, serve.WithLUTStore(o.luts))
	}
	fleet, err = serve.New(fleetOptions...)
	if err != nil {
		return err
	}

	if o.stagger > 0 {
		// Seed the service with the first user; the round hook feeds the
		// rest and closes the queue.
		submitMu.Lock()
		if err := submitUser(0); err != nil {
			submitMu.Unlock()
			return err
		}
		submitted = 1
		submitMu.Unlock()
	} else {
		for i := 0; i < o.users; i++ {
			if err := submitUser(i); err != nil {
				return err
			}
		}
		fleet.Close()
	}

	if len(o.shardCores) > 0 {
		fmt.Printf("\nserving %d users on %d shards of %v cores (min %d, max %d), allocator %q\n\n",
			o.users, o.shards, o.shardCores, o.minShards, o.maxShards, o.allocator)
	} else {
		fmt.Printf("\nserving %d users on %d shard(s) of %d cores each (min %d, max %d), allocator %q\n\n",
			o.users, o.shards, mpsoc.XeonE5_2667V4().Cores, o.minShards, o.maxShards, o.allocator)
	}
	rep, runErr := fleet.Run(ctx)
	if cerr := closeSink(); cerr != nil && runErr == nil {
		runErr = cerr
	}

	fmt.Printf("\nfleet report: %d rounds over %d shards, %d/%d sessions completed (%d rejected, %d failed, %d migrations, %d rebalances)\n",
		rep.Rounds, len(rep.Shards), rep.Completed, rep.Submitted, rep.Rejected, rep.Failed, rep.Migrated, rep.Rebalanced)
	fmt.Printf("  %d frames in %d GOP reports, %.1f J total (avg %.1f W, peak %.1f W), %d deadline misses\n",
		rep.FramesEncoded, rep.GOPReports, rep.Energy.EnergyJ, rep.Energy.AvgPowerW(), rep.Energy.PeakPowerW, rep.Energy.DeadlineMisses)
	for _, sr := range rep.Shards {
		status := "ok"
		if sr.Err != nil {
			status = sr.Err.Error()
		}
		if sr.Report == nil {
			fmt.Printf("  shard %d: never served [%s]\n", sr.Shard, status)
			continue
		}
		fmt.Printf("  shard %d: %d rounds, %d completed, %d migrated away, %d restarts [%s]\n",
			sr.Shard, sr.Report.Rounds, len(sr.Report.Completed), len(sr.Report.Migrated), sr.Restarts, status)
	}
	if ring != nil {
		if e, tiles := ring.Report(-1).MeanEstimateErr(0); tiles > 0 {
			fmt.Printf("  mean stage-D1 estimate error %.1f%% over %d tiles (ring sink, %d rounds dropped)\n",
				100*e, tiles, ring.Dropped())
		}
		if added, removed := ring.Resizes(); added+removed > 0 {
			fmt.Printf("  elasticity: %d shards added, %d removed, %d session migrations\n",
				added, removed, ring.Migrations())
		}
		if n := ring.Rebalances(); n > 0 {
			fmt.Printf("  rebalancing: %d session(s) shed off hot shards\n", n)
		}
	}
	if o.luts != "" && runErr == nil {
		fmt.Printf("  workload LUTs saved to %s\n", o.luts)
	}
	if msrv != nil && o.metricsGrace > 0 {
		// Hold the endpoint open so an external scraper (CI, Prometheus's
		// final pull) can read the settled totals after the fleet drains.
		fmt.Printf("  metrics endpoint held open %s for a final scrape\n", o.metricsGrace)
		select {
		case <-time.After(o.metricsGrace):
		case <-ctx.Done():
		}
	}
	return runErr
}

func classByName(name string) (medgen.Class, bool) {
	for c := medgen.Class(0); int(c) < medgen.NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

func motionByName(name string) (medgen.MotionKind, bool) {
	for _, m := range []medgen.MotionKind{medgen.Still, medgen.Pan, medgen.Rotate, medgen.Sweep} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// startProfiles turns on the requested pprof outputs and returns the
// shutdown hook that flushes them: the CPU profile is stopped and closed,
// and the heap profile is captured after a final GC so it reflects live
// retention rather than garbage awaiting collection. The hook runs on
// clean shutdown only (including interrupt-triggered drains); a fatal
// error exits without profiles, like any crashed pprof session.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "transcode: cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "transcode: memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "transcode: memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "transcode: memprofile: %v\n", err)
			}
		}
	}, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "transcode: "+format+"\n", args...)
	os.Exit(1)
}
