// Command transcode runs the full content-aware pipeline on one synthetic
// bio-medical video and prints per-GOP statistics: the tile structure from
// the content-aware re-tiler, per-tile texture/motion classes and QPs, and
// the frame-level rate/quality/time outcomes.
//
// Example:
//
//	transcode -class brain -motion rotate -frames 48 -mode proposed
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		classFlag  = flag.String("class", "brain", "body-part class: brain|chest|bone|spinal-cord|ligament")
		motionFlag = flag.String("motion", "rotate", "motion script: still|pan|rotate|sweep")
		frames     = flag.Int("frames", 48, "number of frames")
		width      = flag.Int("width", 640, "frame width")
		height     = flag.Int("height", 480, "frame height")
		seed       = flag.Int64("seed", 1, "generator seed")
		modeFlag   = flag.String("mode", "proposed", "pipeline mode: proposed|baseline")
		workers    = flag.Int("workers", 4, "tile-encoding workers")
		verbose    = flag.Bool("v", false, "print per-frame rows")
		yuvPath    = flag.String("yuv", "", "transcode a raw planar I420 file instead of a synthetic study (uses -width/-height/-class)")
	)
	flag.Parse()

	cfg := medgen.Default()
	cfg.Width, cfg.Height = *width, *height
	cfg.Frames = *frames
	cfg.Seed = *seed
	var ok bool
	if cfg.Class, ok = classByName(*classFlag); !ok {
		fatalf("unknown class %q", *classFlag)
	}
	if cfg.Motion, ok = motionByName(*motionFlag); !ok {
		fatalf("unknown motion %q", *motionFlag)
	}
	var src core.FrameSource
	if *yuvPath != "" {
		s, err := core.NewYUVFileSource(*yuvPath, cfg.Width, cfg.Height, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
		cfg.Frames = s.Len()
	} else {
		gen, err := medgen.NewGenerator(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		s, err := core.SourceFromGenerator(gen, cfg.Frames, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
	}

	scfg := core.DefaultSessionConfig()
	scfg.Workers = *workers
	switch *modeFlag {
	case "proposed":
		scfg.Mode = core.ModeProposed
	case "baseline":
		scfg.Mode = core.ModeBaseline
	default:
		fatalf("unknown mode %q", *modeFlag)
	}

	sess, err := core.NewSession(0, src, scfg, workload.NewLUT())
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("transcoding %s/%s %dx%d @ %g fps, %d frames, mode %s\n\n",
		cfg.Class, cfg.Motion, cfg.Width, cfg.Height, cfg.FPS, cfg.Frames, scfg.Mode)

	// An interrupt cancels cleanly at the next tile boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	gopIdx := 0
	for !sess.Finished() {
		gop, err := sess.EncodeGOPContext(ctx, *workers)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "transcode: interrupted")
			os.Exit(130)
		}
		if err != nil {
			fatalf("GOP %d: %v", gopIdx, err)
		}
		fmt.Printf("GOP %d: %d tiles, PSNR %.1f dB, %.0f kbps, CPU %v\n",
			gop.Index, gop.Grid.NumTiles(), gop.MeanPSNR, gop.MeanKbps, gop.CPUTime.Round(100))
		tbl := trace.NewTable("", "tile", "rect", "region", "texture", "motion", "CV")
		for _, tc := range gop.Contents {
			tbl.AddRow(fmt.Sprint(tc.Tile.Index), tc.Tile.Rect.String(), tc.Tile.Region.String(),
				tc.Texture.String(), tc.Motion.String(), fmt.Sprintf("%.3f", tc.CV))
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *verbose {
			for _, fr := range gop.Frames {
				fmt.Printf("  frame %3d [%s] %6d bits  %.1f dB  %v\n",
					fr.Frame, fr.Type, fr.Bits, fr.PSNR, fr.EncodeTime.Round(100))
			}
		}
		fmt.Println()
		gopIdx++
	}
}

func classByName(name string) (medgen.Class, bool) {
	for c := medgen.Class(0); int(c) < medgen.NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

func motionByName(name string) (medgen.MotionKind, bool) {
	for _, m := range []medgen.MotionKind{medgen.Still, medgen.Pan, medgen.Rotate, medgen.Sweep} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "transcode: "+format+"\n", args...)
	os.Exit(1)
}
