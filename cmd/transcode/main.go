// Command transcode runs the full content-aware pipeline on one synthetic
// bio-medical video and prints per-GOP statistics: the tile structure from
// the content-aware re-tiler, per-tile texture/motion classes and QPs, and
// the frame-level rate/quality/time outcomes.
//
// With -users N (N > 1) it instead drives the online serving loop: N
// sessions of mixed classes stream through core.Server.Run with the
// overload-aware admission ladder and measurement-calibrated workload
// estimation enabled, and the service report is printed at the end.
//
// Examples:
//
//	transcode -class brain -motion rotate -frames 48 -mode proposed
//	transcode -users 8 -frames 32
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/medgen"
	"repro/internal/mpsoc"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		classFlag  = flag.String("class", "brain", "body-part class: brain|chest|bone|spinal-cord|ligament")
		motionFlag = flag.String("motion", "rotate", "motion script: still|pan|rotate|sweep")
		frames     = flag.Int("frames", 48, "number of frames")
		width      = flag.Int("width", 640, "frame width")
		height     = flag.Int("height", 480, "frame height")
		seed       = flag.Int64("seed", 1, "generator seed")
		modeFlag   = flag.String("mode", "proposed", "pipeline mode: proposed|baseline")
		workers    = flag.Int("workers", 4, "tile-encoding workers")
		verbose    = flag.Bool("v", false, "print per-frame rows")
		yuvPath    = flag.String("yuv", "", "transcode a raw planar I420 file instead of a synthetic study (uses -width/-height/-class)")
		users      = flag.Int("users", 1, "serve N concurrent synthetic sessions through the online serving loop")
	)
	flag.Parse()

	// An interrupt cancels cleanly at the next tile boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *users > 1 {
		if err := serveUsers(ctx, *users, *width, *height, *frames, *seed, *modeFlag); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "transcode: interrupted")
				os.Exit(130)
			}
			fatalf("%v", err)
		}
		return
	}

	cfg := medgen.Default()
	cfg.Width, cfg.Height = *width, *height
	cfg.Frames = *frames
	cfg.Seed = *seed
	var ok bool
	if cfg.Class, ok = classByName(*classFlag); !ok {
		fatalf("unknown class %q", *classFlag)
	}
	if cfg.Motion, ok = motionByName(*motionFlag); !ok {
		fatalf("unknown motion %q", *motionFlag)
	}
	var src core.FrameSource
	if *yuvPath != "" {
		s, err := core.NewYUVFileSource(*yuvPath, cfg.Width, cfg.Height, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
		cfg.Frames = s.Len()
	} else {
		gen, err := medgen.NewGenerator(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		s, err := core.SourceFromGenerator(gen, cfg.Frames, cfg.FPS, cfg.Class.String())
		if err != nil {
			fatalf("%v", err)
		}
		src = s
	}

	scfg := core.DefaultSessionConfig()
	scfg.Workers = *workers
	switch *modeFlag {
	case "proposed":
		scfg.Mode = core.ModeProposed
	case "baseline":
		scfg.Mode = core.ModeBaseline
	default:
		fatalf("unknown mode %q", *modeFlag)
	}

	sess, err := core.NewSession(0, src, scfg, workload.NewLUT())
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("transcoding %s/%s %dx%d @ %g fps, %d frames, mode %s\n\n",
		cfg.Class, cfg.Motion, cfg.Width, cfg.Height, cfg.FPS, cfg.Frames, scfg.Mode)

	gopIdx := 0
	for !sess.Finished() {
		gop, err := sess.EncodeGOPContext(ctx, *workers)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "transcode: interrupted")
			os.Exit(130)
		}
		if err != nil {
			fatalf("GOP %d: %v", gopIdx, err)
		}
		fmt.Printf("GOP %d: %d tiles, PSNR %.1f dB, %.0f kbps, CPU %v\n",
			gop.Index, gop.Grid.NumTiles(), gop.MeanPSNR, gop.MeanKbps, gop.CPUTime.Round(100))
		tbl := trace.NewTable("", "tile", "rect", "region", "texture", "motion", "CV")
		for _, tc := range gop.Contents {
			tbl.AddRow(fmt.Sprint(tc.Tile.Index), tc.Tile.Rect.String(), tc.Tile.Region.String(),
				tc.Texture.String(), tc.Motion.String(), fmt.Sprintf("%.3f", tc.CV))
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		if *verbose {
			for _, fr := range gop.Frames {
				fmt.Printf("  frame %3d [%s] %6d bits  %.1f dB  %v\n",
					fr.Frame, fr.Type, fr.Bits, fr.PSNR, fr.EncodeTime.Round(100))
			}
		}
		fmt.Println()
		gopIdx++
	}
}

// serveUsers drives the online serving loop: n synthetic sessions of
// rotating classes/motions are submitted up front, served by Server.Run
// with the admission ladder and estimate calibration on, and the service
// report is printed per round and in total.
func serveUsers(ctx context.Context, n, width, height, frames int, seed int64, modeFlag string) error {
	mode := core.ModeProposed
	switch modeFlag {
	case "proposed":
	case "baseline":
		mode = core.ModeBaseline
	default:
		return fmt.Errorf("unknown mode %q", modeFlag)
	}
	srv, err := core.NewServer(core.ServerConfig{
		Platform:    mpsoc.XeonE5_2667V4(),
		FPS:         24,
		Calibration: core.CalibrationConfig{Enabled: true},
		Admission:   core.AdmissionConfig{Enabled: true},
		OnRound: func(out *core.GOPOutcome) {
			fmt.Printf("round %2d: admitted %v", out.Round, out.AdmittedUsers)
			if len(out.RejectedUsers) > 0 {
				fmt.Printf(", waiting %v", out.RejectedUsers)
			}
			if len(out.TimedOut) > 0 {
				fmt.Printf(", timed out %v", out.TimedOut)
			}
			if out.EstimateTiles > 0 {
				fmt.Printf(", estimate error %.1f%%", 100*out.EstimateErr)
			}
			fmt.Printf(", %.1f W\n", out.Energy.AvgPowerW)
		},
	})
	if err != nil {
		return err
	}
	classes := []medgen.Class{medgen.Brain, medgen.Chest, medgen.Bone, medgen.SpinalCord}
	motions := []medgen.MotionKind{medgen.Rotate, medgen.Pan, medgen.Sweep, medgen.Still}
	for i := 0; i < n; i++ {
		vc := medgen.Default()
		vc.Width, vc.Height = width, height
		vc.Frames = frames
		vc.Class = classes[i%len(classes)]
		vc.Motion = motions[i%len(motions)]
		vc.Seed = seed + int64(i)
		gen, err := medgen.NewGenerator(vc)
		if err != nil {
			return err
		}
		src, err := core.SourceFromGenerator(gen, vc.Frames, vc.FPS, vc.Class.String())
		if err != nil {
			return err
		}
		scfg := core.DefaultSessionConfig()
		scfg.Mode = mode
		if _, err := srv.Submit(src, scfg); err != nil {
			return err
		}
	}
	srv.Close()

	fmt.Printf("serving %d users (%dx%d, %d frames each) on %d cores\n\n",
		n, width, height, frames, mpsoc.XeonE5_2667V4().Cores)
	rep, runErr := srv.Run(ctx)
	fmt.Printf("\nservice report: %d rounds, %d/%d sessions completed (%d rejected, %d failed)\n",
		rep.Rounds, len(rep.Completed), rep.Submitted, len(rep.Rejected), len(rep.Failed))
	fmt.Printf("  %d frames in %d GOP reports, %.1f J total (avg %.1f W, peak %.1f W), %d deadline misses\n",
		rep.FramesEncoded, rep.GOPReports, rep.Energy.EnergyJ, rep.Energy.AvgPowerW(), rep.Energy.PeakPowerW, rep.Energy.DeadlineMisses)
	if e, tiles := rep.MeanEstimateErr(0); tiles > 0 {
		fmt.Printf("  mean stage-D1 estimate error %.1f%% over %d tiles\n", 100*e, tiles)
	}
	return runErr
}

func classByName(name string) (medgen.Class, bool) {
	for c := medgen.Class(0); int(c) < medgen.NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

func motionByName(name string) (medgen.MotionKind, bool) {
	for _, m := range []medgen.MotionKind{medgen.Still, medgen.Pan, medgen.Rotate, medgen.Sweep} {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "transcode: "+format+"\n", args...)
	os.Exit(1)
}
