package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineOf(entries map[string]map[string]float64) *Baseline {
	return &Baseline{Benchmarks: entries}
}

// TestCompareDistinguishesVanishedMetricFromVanishedBenchmark is the
// benchdiff regression test: a benchmark present in both files whose
// current entry no longer reports the gated metric must fail the gate
// with its own message — a dropped b.ReportMetric call is a different
// repair than a deleted benchmark, and the old conflated "missing from
// current run" hid which one happened.
func TestCompareDistinguishesVanishedMetricFromVanishedBenchmark(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkKept":    {"gops/svc-sec": 30, "ns/op": 1e6},
		"BenchmarkDropped": {"gops/svc-sec": 25, "ns/op": 2e6},
		"BenchmarkDeleted": {"gops/svc-sec": 20, "ns/op": 3e6},
	})
	cur := baselineOf(map[string]map[string]float64{
		"BenchmarkKept":    {"gops/svc-sec": 31, "ns/op": 1e6},
		"BenchmarkDropped": {"ns/op": 2e6}, // still runs, stopped reporting the gate
	})
	var out, errw bytes.Buffer
	if compare(base, cur, "gops/svc-sec", 0.20, false, &out, &errw) {
		t.Fatalf("gate passed with a vanished metric and a vanished benchmark:\n%s", out.String())
	}
	table := out.String()
	if !strings.Contains(table, "BenchmarkDropped") || !strings.Contains(table, "metric vanished") {
		t.Errorf("vanished metric not called out as such:\n%s", table)
	}
	if !strings.Contains(table, "BenchmarkDeleted") || !strings.Contains(table, "benchmark missing") {
		t.Errorf("vanished benchmark not called out as such:\n%s", table)
	}
	if !strings.Contains(table, "ok   BenchmarkKept") {
		t.Errorf("surviving benchmark not reported ok:\n%s", table)
	}
}

// TestReportCurrentOnlyBenchmarks: a benchmark only the current run has
// is not a failure, but it must be reported on stderr — otherwise it
// stays ungated without anyone noticing.
func TestReportCurrentOnlyBenchmarks(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkOld": {"gops/svc-sec": 30},
	})
	cur := baselineOf(map[string]map[string]float64{
		"BenchmarkOld": {"gops/svc-sec": 30},
		"BenchmarkNew": {"gops/svc-sec": 99},
	})
	var errw bytes.Buffer
	reportCurrentOnly(base, cur, &errw)
	if !strings.Contains(errw.String(), "BenchmarkNew") {
		t.Fatalf("current-only benchmark not reported on stderr: %q", errw.String())
	}
	var out bytes.Buffer
	errw.Reset()
	if !compare(base, cur, "gops/svc-sec", 0.20, false, &out, &errw) {
		t.Fatalf("a new benchmark must not fail the gate:\n%s", out.String())
	}
}

// TestCompareNotesUngatedBaselineEntries: a baseline entry that never
// reported the gated metric cannot be compared; it must be noted on
// stderr rather than silently skipped.
func TestCompareNotesUngatedBaselineEntries(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkGated":   {"gops/svc-sec": 30},
		"BenchmarkUngated": {"ns/op": 1e6},
	})
	cur := baselineOf(map[string]map[string]float64{
		"BenchmarkGated":   {"gops/svc-sec": 30},
		"BenchmarkUngated": {"ns/op": 1e6, "gops/svc-sec": 50},
	})
	var out, errw bytes.Buffer
	if !compare(base, cur, "gops/svc-sec", 0.20, false, &out, &errw) {
		t.Fatalf("ungated baseline entry failed the gate:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "BenchmarkUngated") {
		t.Fatalf("ungated baseline entry not noted on stderr: %q", errw.String())
	}
}

// TestCompareDirections: the higher-is-better gate fails on a drop past
// tolerance and the lower-is-better gate on a rise, and both pass within
// tolerance.
func TestCompareDirections(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkA": {"gops/svc-sec": 100, "ns/op": 1000},
	})
	cases := []struct {
		name          string
		curVal        float64
		metric        string
		lowerIsBetter bool
		wantOK        bool
	}{
		{"drop past tolerance", 70, "gops/svc-sec", false, false},
		{"drop within tolerance", 90, "gops/svc-sec", false, true},
		{"rise past tolerance", 1300, "ns/op", true, false},
		{"rise within tolerance", 1100, "ns/op", true, true},
	}
	for _, tc := range cases {
		cur := baselineOf(map[string]map[string]float64{
			"BenchmarkA": {tc.metric: tc.curVal},
		})
		var out, errw bytes.Buffer
		if got := compare(base, cur, tc.metric, 0.20, tc.lowerIsBetter, &out, &errw); got != tc.wantOK {
			t.Errorf("%s: compare=%v want %v\n%s", tc.name, got, tc.wantOK, out.String())
		}
	}
}

// TestParseBenchmemOutput: -benchmem appends "N B/op" and "N allocs/op"
// pairs to every result line; parse must keep them as metrics alongside
// ns/op and custom b.ReportMetric units, averaging across -count repeats.
func TestParseBenchmemOutput(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: repro
BenchmarkFleetRun_Churn-8    2  953843882 ns/op  30.00 gops/svc-sec  1200000 B/op  42000 allocs/op
BenchmarkFleetRun_Churn-8    2  953843884 ns/op  30.00 gops/svc-sec  1200000 B/op  44000 allocs/op
BenchmarkServeGOP_Scaling/users4-8  2  185459566 ns/op  26698484 B/op  42077 allocs/op
PASS
`
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	churn := b.Benchmarks["BenchmarkFleetRun_Churn"]
	if churn == nil {
		t.Fatalf("churn benchmark not parsed: %+v", b.Benchmarks)
	}
	if got := churn["allocs/op"]; got != 43000 {
		t.Errorf("allocs/op not averaged across repeats: got %v want 43000", got)
	}
	if got := churn["B/op"]; got != 1200000 {
		t.Errorf("B/op = %v, want 1200000", got)
	}
	if got := churn["gops/svc-sec"]; got != 30 {
		t.Errorf("custom metric lost alongside benchmem pairs: %v", got)
	}
	scaling := b.Benchmarks["BenchmarkServeGOP_Scaling/users4"]
	if scaling == nil || scaling["allocs/op"] != 42077 || scaling["B/op"] != 26698484 {
		t.Errorf("sub-benchmark benchmem pairs wrong: %+v", scaling)
	}
}

// TestParseLowGate covers the -gate-low flag syntax.
func TestParseLowGate(t *testing.T) {
	g, err := parseLowGate("allocs/op:0.10")
	if err != nil || g.metric != "allocs/op" || g.maxRise != 0.10 {
		t.Errorf("parseLowGate(allocs/op:0.10) = %+v, %v", g, err)
	}
	// The split is on the last colon, so exotic metric names survive.
	g, err = parseLowGate("custom:thing:0.5")
	if err != nil || g.metric != "custom:thing" || g.maxRise != 0.5 {
		t.Errorf("parseLowGate(custom:thing:0.5) = %+v, %v", g, err)
	}
	for _, bad := range []string{"", "allocs/op", "allocs/op:", ":0.1", "allocs/op:x", "allocs/op:-1", "allocs/op:NaN"} {
		if _, err := parseLowGate(bad); err == nil {
			t.Errorf("parseLowGate(%q) accepted", bad)
		}
	}
}

// TestCompareAllocsGate pins the CI allocation gate: a >10% allocs/op
// rise fails, a rise within tolerance or an improvement passes.
func TestCompareAllocsGate(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkServeGOP_Scaling/users4": {"ns/op": 1.9e8, "allocs/op": 16000, "B/op": 1.8e7},
	})
	cases := []struct {
		name   string
		allocs float64
		wantOK bool
	}{
		{"regression past 10%", 18000, false},
		{"rise within 10%", 17000, true},
		{"improvement", 8000, true},
	}
	for _, tc := range cases {
		cur := baselineOf(map[string]map[string]float64{
			"BenchmarkServeGOP_Scaling/users4": {"ns/op": 1.9e8, "allocs/op": tc.allocs, "B/op": 1.8e7},
		})
		var out, errw bytes.Buffer
		if got := compare(base, cur, "allocs/op", 0.10, true, &out, &errw); got != tc.wantOK {
			t.Errorf("%s: compare=%v want %v\n%s", tc.name, got, tc.wantOK, out.String())
		}
	}
}
