package main

import (
	"bytes"
	"strings"
	"testing"
)

func baselineOf(entries map[string]map[string]float64) *Baseline {
	return &Baseline{Benchmarks: entries}
}

// TestCompareDistinguishesVanishedMetricFromVanishedBenchmark is the
// benchdiff regression test: a benchmark present in both files whose
// current entry no longer reports the gated metric must fail the gate
// with its own message — a dropped b.ReportMetric call is a different
// repair than a deleted benchmark, and the old conflated "missing from
// current run" hid which one happened.
func TestCompareDistinguishesVanishedMetricFromVanishedBenchmark(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkKept":    {"gops/svc-sec": 30, "ns/op": 1e6},
		"BenchmarkDropped": {"gops/svc-sec": 25, "ns/op": 2e6},
		"BenchmarkDeleted": {"gops/svc-sec": 20, "ns/op": 3e6},
	})
	cur := baselineOf(map[string]map[string]float64{
		"BenchmarkKept":    {"gops/svc-sec": 31, "ns/op": 1e6},
		"BenchmarkDropped": {"ns/op": 2e6}, // still runs, stopped reporting the gate
	})
	var out, errw bytes.Buffer
	if compare(base, cur, "gops/svc-sec", 0.20, false, &out, &errw) {
		t.Fatalf("gate passed with a vanished metric and a vanished benchmark:\n%s", out.String())
	}
	table := out.String()
	if !strings.Contains(table, "BenchmarkDropped") || !strings.Contains(table, "metric vanished") {
		t.Errorf("vanished metric not called out as such:\n%s", table)
	}
	if !strings.Contains(table, "BenchmarkDeleted") || !strings.Contains(table, "benchmark missing") {
		t.Errorf("vanished benchmark not called out as such:\n%s", table)
	}
	if !strings.Contains(table, "ok   BenchmarkKept") {
		t.Errorf("surviving benchmark not reported ok:\n%s", table)
	}
}

// TestReportCurrentOnlyBenchmarks: a benchmark only the current run has
// is not a failure, but it must be reported on stderr — otherwise it
// stays ungated without anyone noticing.
func TestReportCurrentOnlyBenchmarks(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkOld": {"gops/svc-sec": 30},
	})
	cur := baselineOf(map[string]map[string]float64{
		"BenchmarkOld": {"gops/svc-sec": 30},
		"BenchmarkNew": {"gops/svc-sec": 99},
	})
	var errw bytes.Buffer
	reportCurrentOnly(base, cur, &errw)
	if !strings.Contains(errw.String(), "BenchmarkNew") {
		t.Fatalf("current-only benchmark not reported on stderr: %q", errw.String())
	}
	var out bytes.Buffer
	errw.Reset()
	if !compare(base, cur, "gops/svc-sec", 0.20, false, &out, &errw) {
		t.Fatalf("a new benchmark must not fail the gate:\n%s", out.String())
	}
}

// TestCompareNotesUngatedBaselineEntries: a baseline entry that never
// reported the gated metric cannot be compared; it must be noted on
// stderr rather than silently skipped.
func TestCompareNotesUngatedBaselineEntries(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkGated":   {"gops/svc-sec": 30},
		"BenchmarkUngated": {"ns/op": 1e6},
	})
	cur := baselineOf(map[string]map[string]float64{
		"BenchmarkGated":   {"gops/svc-sec": 30},
		"BenchmarkUngated": {"ns/op": 1e6, "gops/svc-sec": 50},
	})
	var out, errw bytes.Buffer
	if !compare(base, cur, "gops/svc-sec", 0.20, false, &out, &errw) {
		t.Fatalf("ungated baseline entry failed the gate:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "BenchmarkUngated") {
		t.Fatalf("ungated baseline entry not noted on stderr: %q", errw.String())
	}
}

// TestCompareDirections: the higher-is-better gate fails on a drop past
// tolerance and the lower-is-better gate on a rise, and both pass within
// tolerance.
func TestCompareDirections(t *testing.T) {
	base := baselineOf(map[string]map[string]float64{
		"BenchmarkA": {"gops/svc-sec": 100, "ns/op": 1000},
	})
	cases := []struct {
		name          string
		curVal        float64
		metric        string
		lowerIsBetter bool
		wantOK        bool
	}{
		{"drop past tolerance", 70, "gops/svc-sec", false, false},
		{"drop within tolerance", 90, "gops/svc-sec", false, true},
		{"rise past tolerance", 1300, "ns/op", true, false},
		{"rise within tolerance", 1100, "ns/op", true, true},
	}
	for _, tc := range cases {
		cur := baselineOf(map[string]map[string]float64{
			"BenchmarkA": {tc.metric: tc.curVal},
		})
		var out, errw bytes.Buffer
		if got := compare(base, cur, tc.metric, 0.20, tc.lowerIsBetter, &out, &errw); got != tc.wantOK {
			t.Errorf("%s: compare=%v want %v\n%s", tc.name, got, tc.wantOK, out.String())
		}
	}
}
