// Command benchdiff turns `go test -bench` output into a committed JSON
// baseline and gates CI on it: the perf trajectory the ROADMAP asks for.
//
// Two modes:
//
//	benchdiff -parse bench.txt                 # text → JSON on stdout
//	benchdiff -baseline BENCH_pr9.json -current BENCH_ci.json \
//	          -metric gops/svc-sec -max-drop 0.20 -low-metric ns/op -max-rise 0.20 \
//	          -gate-low allocs/op:0.10 -gate-low B/op:0.20
//
// Parse averages repeated runs (-count N) of each benchmark and keeps
// every reported metric (ns/op, custom b.ReportMetric units, and the
// B/op / allocs/op pairs emitted under `go test -benchmem`).
// Compare fails (exit 1) when any benchmark present in both files drops
// more than -max-drop on a higher-is-better metric like gops/svc-sec —
// chosen as the primary gate because it is measured in simulated
// *service* time (rounds × GOP seconds), so it is stable across runner
// hardware where wall-clock ns/op is not. -low-metric adds a second,
// lower-is-better gate (typically ns/op) that fails when the current
// value rises more than -max-rise above the baseline — the coarse
// wall-clock backstop that catches a real slowdown the service-time
// metric cannot see, which is why its default tolerance is the same 20%
// but measured in the other direction. -gate-low METRIC:MAXRISE adds
// further lower-is-better gates with per-metric tolerances and may be
// repeated; CI uses it to fail allocs/op regressions beyond 10%, the
// allocation budget the pooled encode hot path is held to (allocation
// counts are deterministic, so the tolerance can be much tighter than
// for wall-clock metrics). A benchmark missing from the current file
// fails too: a gate that silently stops measuring is no gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the JSON schema of a committed benchmark snapshot.
type Baseline struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// metrics, each averaged over the repeated runs.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` output FILE and print the JSON baseline")
		baseline  = flag.String("baseline", "", "committed baseline JSON")
		current   = flag.String("current", "", "freshly measured JSON to compare against the baseline")
		metric    = flag.String("metric", "gops/svc-sec", "higher-is-better metric to gate on")
		maxDrop   = flag.Float64("max-drop", 0.20, "maximum tolerated fractional drop below the baseline")
		lowMetric = flag.String("low-metric", "", "optional lower-is-better metric to gate on as well (e.g. ns/op)")
		maxRise   = flag.Float64("max-rise", 0.20, "maximum tolerated fractional rise above the baseline on -low-metric")
	)
	var gateLows []lowGate
	flag.Func("gate-low", "additional lower-is-better gate `METRIC:MAXRISE` (repeatable), e.g. allocs/op:0.10", func(v string) error {
		g, err := parseLowGate(v)
		if err != nil {
			return err
		}
		gateLows = append(gateLows, g)
		return nil
	})
	flag.Parse()

	switch {
	case *parse != "":
		b, err := parseBench(*parse)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fatalf("%v", err)
		}
	case *baseline != "" && *current != "":
		base, err := loadBaseline(*baseline)
		if err != nil {
			fatalf("%v", err)
		}
		cur, err := loadBaseline(*current)
		if err != nil {
			fatalf("%v", err)
		}
		reportCurrentOnly(base, cur, os.Stderr)
		ok := compare(base, cur, *metric, *maxDrop, false, os.Stdout, os.Stderr)
		if *lowMetric != "" {
			ok = compare(base, cur, *lowMetric, *maxRise, true, os.Stdout, os.Stderr) && ok
		}
		for _, g := range gateLows {
			ok = compare(base, cur, g.metric, g.maxRise, true, os.Stdout, os.Stderr) && ok
		}
		if !ok {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff -parse FILE | benchdiff -baseline a.json -current b.json [-metric M] [-max-drop F] [-low-metric M] [-max-rise F] [-gate-low M:F]...")
		os.Exit(2)
	}
}

// lowGate is one -gate-low entry: a lower-is-better metric with its own
// tolerated fractional rise.
type lowGate struct {
	metric  string
	maxRise float64
}

// parseLowGate splits "METRIC:MAXRISE" (e.g. "allocs/op:0.10"). The
// split is on the LAST colon so metric names containing colons survive.
func parseLowGate(v string) (lowGate, error) {
	i := strings.LastIndex(v, ":")
	if i <= 0 || i == len(v)-1 {
		return lowGate{}, fmt.Errorf("benchdiff: -gate-low wants METRIC:MAXRISE, got %q", v)
	}
	tol, err := strconv.ParseFloat(v[i+1:], 64)
	if err != nil || math.IsNaN(tol) || tol < 0 {
		return lowGate{}, fmt.Errorf("benchdiff: -gate-low %q: bad tolerance %q", v, v[i+1:])
	}
	return lowGate{metric: v[:i], maxRise: tol}, nil
}

// parseBench reads `go test -bench` text output. A result line looks like
//
//	BenchmarkFleetRun_Churn-8   2   953843882 ns/op   30.00 gops/svc-sec   12.00 gops/op
//
// name and iteration count first, then value/unit pairs. Repeats of one
// benchmark (-count) are averaged arithmetically.
func parseBench(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sums := make(map[string]map[string]float64)
	runs := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix so baselines from hosts with
			// different core counts still line up.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q on line %q", fields[i], sc.Text())
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) == 0 {
			continue
		}
		if sums[name] == nil {
			sums[name] = make(map[string]float64)
		}
		for unit, v := range metrics {
			sums[name][unit] += v
		}
		runs[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark results in %s", path)
	}
	out := &Baseline{Benchmarks: make(map[string]map[string]float64)}
	for name, m := range sums {
		avg := make(map[string]float64, len(m))
		for unit, sum := range m {
			avg[unit] = sum / float64(runs[name])
		}
		out.Benchmarks[name] = avg
	}
	return out, nil
}

func loadBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b Baseline
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	return &b, nil
}

// reportCurrentOnly lists, on errw, benchmarks the current run has that
// the baseline does not. New benchmarks are not failures — the suite is
// allowed to grow — but a gate that never mentions them invites a silent
// coverage gap: the new benchmark stays ungated until someone notices.
func reportCurrentOnly(base, cur *Baseline, errw io.Writer) {
	var extra []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(errw, "benchdiff: note: %s is new (not in the baseline) — regenerate the baseline to gate it\n", name)
	}
}

// compare prints a per-benchmark table of the gated metric to out and
// returns false when any gated benchmark regressed past tolerance —
// dropped below it for a higher-is-better metric, risen above it for a
// lower-is-better one — or stopped being measured. The two vanishing
// cases fail with distinct messages: a benchmark missing from the
// current file entirely (it was deleted or did not run) is a different
// repair than a benchmark that still runs but no longer reports the
// gated metric (a dropped b.ReportMetric call). Baseline entries that
// never reported the metric cannot be gated; they are noted on errw so
// the gap is visible instead of silently skipped.
func compare(base, cur *Baseline, metric string, tolerance float64, lowerIsBetter bool, out, errw io.Writer) bool {
	var names []string
	for name, metrics := range base.Benchmarks {
		if _, ok := metrics[metric]; ok {
			names = append(names, name)
		} else {
			fmt.Fprintf(errw, "benchdiff: note: %s has no baseline %q — not gated on it\n", name, metric)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(errw, "benchdiff: baseline has no benchmark reporting %q\n", metric)
		return false
	}
	ok := true
	for _, name := range names {
		want := base.Benchmarks[name][metric]
		curMetrics, inCurrent := cur.Benchmarks[name]
		got, present := 0.0, false
		if curMetrics != nil {
			got, present = curMetrics[metric]
		}
		regressed := want > 0 && got < want*(1-tolerance)
		direction := "drop"
		if lowerIsBetter {
			regressed = want > 0 && got > want*(1+tolerance)
			direction = "rise"
		}
		switch {
		case !inCurrent:
			fmt.Fprintf(out, "FAIL %-40s %s: benchmark missing from current run (baseline %.2f)\n", name, metric, want)
			ok = false
		case !present:
			fmt.Fprintf(out, "FAIL %-40s %s: metric vanished from current run (baseline %.2f)\n", name, metric, want)
			ok = false
		case regressed:
			fmt.Fprintf(out, "FAIL %-40s %s: %.2f → %.2f (%.1f%% %s > %.0f%% allowed)\n",
				name, metric, want, got, 100*math.Abs(got/want-1), direction, 100*tolerance)
			ok = false
		default:
			delta := 0.0
			if want > 0 {
				delta = 100 * (got/want - 1)
			}
			fmt.Fprintf(out, "ok   %-40s %s: %.2f → %.2f (%+.1f%%)\n", name, metric, want, got, delta)
		}
	}
	return ok
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
