// Command experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index):
//
//	experiments -table1            Table I  (motion-estimation sweep)
//	experiments -fig3              Fig. 3   (tile structure + CPU time)
//	experiments -table2            Table II (users served, PSNR, bitrate)
//	experiments -fig4              Fig. 4   (power savings sweep)
//	experiments -lut               LUT convergence (Sec. III-D1 claim)
//	experiments -all               everything
//
// Runs are deterministic up to host timing noise: workloads come from the
// seeded synthetic corpus, and scheduling/power numbers are derived from
// measured encode times calibrated to the paper's platform regime.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "run Table I (ME speedup/PSNR/bitrate sweep)")
		fig3     = flag.Bool("fig3", false, "run Fig. 3 (tile structure and per-tile CPU time)")
		table2   = flag.Bool("table2", false, "run Table II (served users, PSNR, bitrate)")
		fig4     = flag.Bool("fig4", false, "run Fig. 4 (power savings vs user count)")
		lut      = flag.Bool("lut", false, "run the workload-LUT convergence experiment")
		ablation = flag.Bool("ablation", false, "run the pipeline ablation study (DESIGN.md §5)")
		all      = flag.Bool("all", false, "run everything")
		frames   = flag.Int("frames", 0, "override Table I frame count (paper: 400)")
		queue    = flag.Int("queue", 0, "override Table II queue length")
	)
	flag.Parse()
	if !*table1 && !*fig3 && !*table2 && !*fig4 && !*lut && !*ablation && !*all {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *table1 || *all {
		run("Table I", func() error {
			opt := experiments.DefaultTable1Options()
			if *frames > 0 {
				opt.Frames = *frames
				opt.Video.Frames = *frames
			}
			res, err := experiments.RunTable1(opt)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		})
	}
	if *fig3 || *all {
		run("Fig. 3", func() error {
			res, err := experiments.RunFig3(experiments.DefaultFig3Options())
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		})
	}
	if *table2 || *all {
		run("Table II", func() error {
			opt := experiments.DefaultTable2Options()
			if *queue > 0 {
				opt.QueueLen = *queue
			}
			res, err := experiments.RunTable2(opt)
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		})
	}
	if *fig4 || *all {
		run("Fig. 4", func() error {
			res, err := experiments.RunFig4(experiments.DefaultFig4Options())
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		})
	}
	if *lut || *all {
		run("LUT convergence", func() error {
			res, err := experiments.RunLUT(experiments.DefaultLUTOptions())
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		})
	}
	if *ablation || *all {
		run("Ablation", func() error {
			res, err := experiments.RunAblation(experiments.DefaultAblationOptions())
			if err != nil {
				return err
			}
			return res.Render(os.Stdout)
		})
	}
}
